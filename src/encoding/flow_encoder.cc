#include "encoding/flow_encoder.h"

#include <deque>

#include "trace/trace.h"

namespace xmlverify {

namespace {

// An edge of the kind graph, for the spanning-forest (connectivity)
// constraints: `contribution` is the variable whose value is the
// number of child instances created along this edge.
struct KindEdge {
  int parent;
  int child;
  VarId contribution;
};

}  // namespace

int DtdFlowSystem::KindIndex(int symbol, int state) const {
  auto it = kind_index_.find({symbol, state});
  return it == kind_index_.end() ? -1 : it->second;
}

VarId DtdFlowSystem::CountVar(int element_type, int state) const {
  int kind = KindIndex(element_type, state);
  return kind < 0 ? -1 : kinds_[kind].count;
}

std::vector<std::pair<int, VarId>> DtdFlowSystem::StatesOf(
    int element_type) const {
  std::vector<std::pair<int, VarId>> result;
  for (const auto& [key, kind] : kind_index_) {
    if (key.first == element_type) {
      result.emplace_back(key.second, kinds_[kind].count);
    }
  }
  return result;
}

VarId DtdFlowSystem::TotalCountVar(int element_type, IntegerProgram* program) {
  auto it = total_vars_.find(element_type);
  if (it != total_vars_.end()) return it->second;
  std::vector<std::pair<int, VarId>> states = StatesOf(element_type);
  if (states.empty()) return -1;
  VarId total =
      program->NewVariable("ext(" + dtd_->TypeName(element_type) + ")");
  LinearExpr sum;
  sum.Add(total, BigInt(1));
  for (const auto& [state, count] : states) {
    (void)state;
    sum.Add(count, BigInt(-1));
  }
  program->AddLinear(std::move(sum), Relation::kEq, BigInt(0),
                     "ext-total:" + dtd_->TypeName(element_type));
  total_vars_[element_type] = total;
  return total;
}

Result<DtdFlowSystem> DtdFlowSystem::Build(const Dtd& dtd, ProductDfa* product,
                                           IntegerProgram* program) {
  const int variables_before = program->num_variables();
  const size_t linear_before = program->linear().size();
  const size_t conditionals_before = program->conditionals().size();
  DtdFlowSystem system;
  system.dtd_ = &dtd;
  ASSIGN_OR_RETURN(system.narrowed_, NarrowedDtd::Build(dtd));
  const NarrowedDtd& narrowed = system.narrowed_;

  // Discover reachable kinds from the root, materializing variables.
  auto intern = [&](int symbol, int state) {
    auto [it, inserted] = system.kind_index_.emplace(
        std::make_pair(symbol, state),
        static_cast<int>(system.kinds_.size()));
    if (inserted) {
      Kind kind;
      kind.symbol = symbol;
      kind.state = state;
      kind.count = program->NewVariable(
          "y(" + narrowed.SymbolName(dtd, symbol) + "@" +
          std::to_string(state) + ")");
      system.kinds_.push_back(kind);
    }
    return it->second;
  };

  int root_state = 0;
  if (product != nullptr) {
    root_state = product->Next(product->start(), dtd.root());
  }
  system.root_state_ = root_state;
  system.root_kind_ = intern(dtd.root(), root_state);

  std::deque<int> worklist = {system.root_kind_};
  std::vector<KindEdge> edges;
  while (!worklist.empty()) {
    int index = worklist.front();
    worklist.pop_front();
    // Copy symbol/state: kinds_ may reallocate while interning below.
    const int symbol = system.kinds_[index].symbol;
    const int state = system.kinds_[index].state;
    const NarrowRule& rule = narrowed.rules[symbol];
    auto child_of = [&](int child_symbol) {
      int child_state = state;
      if (narrowed.IsElementType(child_symbol) && product != nullptr) {
        child_state = product->Next(state, child_symbol);
      }
      int before = static_cast<int>(system.kinds_.size());
      int child = intern(child_symbol, child_state);
      if (child >= before) worklist.push_back(child);
      return child;
    };
    switch (rule.kind) {
      case NarrowRule::Kind::kEpsilon:
      case NarrowRule::Kind::kString:
        break;
      case NarrowRule::Kind::kElement:
      case NarrowRule::Kind::kStar: {
        int child = child_of(rule.a);
        system.kinds_[index].child_a = child;
        if (rule.kind == NarrowRule::Kind::kStar) {
          VarId star_out = program->NewVariable(
              "star(" + narrowed.SymbolName(dtd, symbol) + "@" +
              std::to_string(state) + ")");
          system.kinds_[index].star_out = star_out;
          // (star_out >= 1) -> (y >= 1): children need a parent.
          LinearExpr need_parent;
          need_parent.Add(system.kinds_[index].count, BigInt(1));
          program->AddConditional(star_out, std::move(need_parent),
                                  Relation::kGe, BigInt(1), "star-parent");
          edges.push_back({index, child, star_out});
        } else {
          edges.push_back({index, child, system.kinds_[index].count});
        }
        break;
      }
      case NarrowRule::Kind::kSeq: {
        int child_a = child_of(rule.a);
        int child_b = child_of(rule.b);
        system.kinds_[index].child_a = child_a;
        system.kinds_[index].child_b = child_b;
        edges.push_back({index, child_a, system.kinds_[index].count});
        edges.push_back({index, child_b, system.kinds_[index].count});
        break;
      }
      case NarrowRule::Kind::kAlt: {
        int child_a = child_of(rule.a);
        int child_b = child_of(rule.b);
        system.kinds_[index].child_a = child_a;
        system.kinds_[index].child_b = child_b;
        VarId use_a = program->NewVariable(
            "alt_a(" + narrowed.SymbolName(dtd, symbol) + "@" +
            std::to_string(state) + ")");
        VarId use_b = program->NewVariable(
            "alt_b(" + narrowed.SymbolName(dtd, symbol) + "@" +
            std::to_string(state) + ")");
        system.kinds_[index].alt_use_a = use_a;
        system.kinds_[index].alt_use_b = use_b;
        // y = use_a + use_b.
        LinearExpr split;
        split.Add(system.kinds_[index].count, BigInt(1));
        split.Add(use_a, BigInt(-1));
        split.Add(use_b, BigInt(-1));
        program->AddLinear(std::move(split), Relation::kEq, BigInt(0),
                           "alt-split");
        edges.push_back({index, child_a, use_a});
        edges.push_back({index, child_b, use_b});
        break;
      }
    }
  }

  // Flow conservation: y_child = [child == root] + sum of parent
  // contributions. The root has no incoming edges (its type appears in
  // no content model), so its equation is y_root = 1.
  std::vector<LinearExpr> incoming(system.kinds_.size());
  for (const KindEdge& edge : edges) {
    incoming[edge.child].Add(edge.contribution, BigInt(1));
  }
  for (size_t kind = 0; kind < system.kinds_.size(); ++kind) {
    LinearExpr balance;
    balance.Add(system.kinds_[kind].count, BigInt(1));
    for (const auto& [var, coeff] : incoming[kind].terms()) {
      balance.Add(var, -coeff);
    }
    BigInt rhs(static_cast<int>(kind) == system.root_kind_ ? 1 : 0);
    program->AddLinear(std::move(balance), Relation::kEq, rhs, "flow");
  }

  // Connectivity (recursive DTDs only): exclude orphan cycles.
  if (dtd.IsRecursive()) {
    const int num_kinds = static_cast<int>(system.kinds_.size());
    const BigInt big_m(num_kinds + 1);
    std::vector<VarId> distance(num_kinds, -1);
    for (int kind = 0; kind < num_kinds; ++kind) {
      distance[kind] = program->NewVariable("z" + std::to_string(kind));
      program->SetUpperBound(distance[kind], BigInt(num_kinds));
    }
    // Root distance zero.
    LinearExpr root_distance;
    root_distance.Add(distance[system.root_kind_], BigInt(1));
    program->AddLinear(std::move(root_distance), Relation::kEq, BigInt(0),
                       "conn-root");
    std::vector<LinearExpr> marked_incoming(num_kinds);
    for (const KindEdge& edge : edges) {
      VarId marker = program->NewVariable("w" + std::to_string(edge.parent) +
                                          "_" + std::to_string(edge.child));
      program->SetUpperBound(marker, BigInt(1));
      // Marked edges must carry flow: w <= contribution.
      LinearExpr flow_bound;
      flow_bound.Add(marker, BigInt(1));
      flow_bound.Add(edge.contribution, BigInt(-1));
      program->AddLinear(std::move(flow_bound), Relation::kLe, BigInt(0),
                         "conn-flow");
      // Marked edges go strictly root-ward:
      // z_child >= z_parent + 1 - M(1 - w).
      LinearExpr rootward;
      rootward.Add(distance[edge.parent], BigInt(1));
      rootward.Add(distance[edge.child], BigInt(-1));
      rootward.Add(marker, big_m);
      program->AddLinear(std::move(rootward), Relation::kLe,
                         big_m - BigInt(1), "conn-rootward");
      marked_incoming[edge.child].Add(marker, BigInt(1));
    }
    for (int kind = 0; kind < num_kinds; ++kind) {
      if (kind == system.root_kind_) continue;
      // (y_kind >= 1) -> (some incoming edge is marked).
      program->AddConditional(system.kinds_[kind].count,
                              marked_incoming[kind], Relation::kGe, BigInt(1),
                              "conn-reach");
    }
  }

  trace::Count("encoder/flow/kinds",
               static_cast<int64_t>(system.kinds_.size()));
  trace::Count("encoder/flow/variables",
               program->num_variables() - variables_before);
  trace::Count("encoder/flow/constraints",
               static_cast<int64_t>(program->linear().size() - linear_before +
                                    program->conditionals().size() -
                                    conditionals_before));
  return system;
}

bool DtdFlowSystem::RemainderProducible(
    const std::vector<int>& sources, const std::vector<BigInt>& required,
    const std::vector<BigInt>& created, const std::vector<BigInt>& alt_a_budget,
    const std::vector<BigInt>& alt_b_budget,
    const std::vector<BigInt>& star_budget) const {
  std::vector<char> reached(kinds_.size(), 0);
  std::vector<int> stack;
  for (int kind : sources) {
    if (!reached[kind]) {
      reached[kind] = 1;
      stack.push_back(kind);
    }
  }
  auto visit = [&](int kind) {
    if (!reached[kind]) {
      reached[kind] = 1;
      stack.push_back(kind);
    }
  };
  while (!stack.empty()) {
    int index = stack.back();
    stack.pop_back();
    const Kind& kind = kinds_[index];
    const NarrowRule& rule = narrowed_.rules[kind.symbol];
    switch (rule.kind) {
      case NarrowRule::Kind::kEpsilon:
      case NarrowRule::Kind::kString:
        break;
      case NarrowRule::Kind::kElement:
      case NarrowRule::Kind::kSeq:
        visit(kind.child_a);
        if (rule.kind == NarrowRule::Kind::kSeq) visit(kind.child_b);
        break;
      case NarrowRule::Kind::kAlt:
        if (alt_a_budget[index] > BigInt(0)) visit(kind.child_a);
        if (alt_b_budget[index] > BigInt(0)) visit(kind.child_b);
        break;
      case NarrowRule::Kind::kStar:
        if (star_budget[index] > BigInt(0)) visit(kind.child_a);
        break;
    }
  }
  for (size_t kind = 0; kind < kinds_.size(); ++kind) {
    if (created[kind] < required[kind] && !reached[kind]) return false;
  }
  return true;
}

Result<XmlTree> DtdFlowSystem::BuildTree(const std::vector<BigInt>& solution,
                                         int64_t max_nodes) const {
  // Budgets for alternative and star expansions.
  std::vector<BigInt> alt_a_budget(kinds_.size(), BigInt(0));
  std::vector<BigInt> alt_b_budget(kinds_.size(), BigInt(0));
  std::vector<BigInt> star_budget(kinds_.size(), BigInt(0));
  int64_t total_instances = 0;
  for (size_t kind = 0; kind < kinds_.size(); ++kind) {
    if (kinds_[kind].alt_use_a >= 0) {
      alt_a_budget[kind] = solution[kinds_[kind].alt_use_a];
      alt_b_budget[kind] = solution[kinds_[kind].alt_use_b];
    }
    if (kinds_[kind].star_out >= 0) {
      star_budget[kind] = solution[kinds_[kind].star_out];
    }
    const BigInt& count = solution[kinds_[kind].count];
    Result<int64_t> count64 = count.TryToInt64();
    if (!count64.ok() || (total_instances += *count64) > max_nodes) {
      return Status::ResourceExhausted(
          "witness tree would exceed the node limit; the counting "
          "solution is astronomically large");
    }
  }

  std::vector<BigInt> required(kinds_.size(), BigInt(0));
  for (size_t kind = 0; kind < kinds_.size(); ++kind) {
    required[kind] = solution[kinds_[kind].count];
  }

  XmlTree tree(dtd_->root());
  // Elements are expanded one at a time: the nonterminal structure of
  // one element's content is unwound depth-first, left-to-right (so
  // sibling order matches the content model), and each kElement step
  // materializes a child element that is queued for later expansion.
  struct ElementItem {
    NodeId node;
    int kind;  // a kind whose symbol is an element type
  };
  std::deque<ElementItem> elements;
  elements.push_back({tree.root(), root_kind_});
  std::vector<BigInt> created(kinds_.size(), BigInt(0));
  created[root_kind_] = BigInt(1);

  while (!elements.empty()) {
    ElementItem element = elements.front();
    elements.pop_front();
    // In-place DFS over the narrow rules of this element's content.
    std::vector<int> stack = {element.kind};
    // The element kind's own rule is the narrowing of P(tau).
    while (!stack.empty()) {
      int kind_index = stack.back();
      stack.pop_back();
      const Kind& kind = kinds_[kind_index];
      const NarrowRule& rule = narrowed_.rules[kind.symbol];
      switch (rule.kind) {
        case NarrowRule::Kind::kEpsilon:
          break;
        case NarrowRule::Kind::kString:
          tree.AddText(element.node, "");
          break;
        case NarrowRule::Kind::kElement: {
          NodeId child = tree.AddElement(element.node, rule.a);
          created[kind.child_a] += 1;
          elements.push_back({child, kind.child_a});
          break;
        }
        case NarrowRule::Kind::kSeq:
          created[kind.child_a] += 1;
          created[kind.child_b] += 1;
          // LIFO: push the right part first so the left expands first.
          stack.push_back(kind.child_b);
          stack.push_back(kind.child_a);
          break;
        case NarrowRule::Kind::kAlt: {
          bool can_a = alt_a_budget[kind_index] > BigInt(0);
          bool can_b = alt_b_budget[kind_index] > BigInt(0);
          if (!can_a && !can_b) {
            return Status::Internal(
                "alternative budgets exhausted while rebuilding the witness "
                "tree (flow solution inconsistent)");
          }
          int chosen;
          if (can_a && can_b) {
            // Both branches have budget, so the flow solution does not
            // pin down which instance takes which — and a careless
            // choice can strand the remainder of a recursive cycle
            // (e.g. taking the terminating branch of t0 -> (% | t2),
            // t2 -> t0 at the only pending t0 leaves the counted
            // t2/t0 tail unreachable). Take branch a only if the
            // still-owed kinds stay producible from the pending work
            // afterwards; otherwise branch b must be the one that
            // keeps the chain alive.
            alt_a_budget[kind_index] -= 1;
            created[kind.child_a] += 1;
            std::vector<int> sources = {kind.child_a};
            for (const ElementItem& pending : elements) {
              sources.push_back(pending.kind);
            }
            sources.insert(sources.end(), stack.begin(), stack.end());
            bool a_keeps_producible =
                RemainderProducible(sources, required, created, alt_a_budget,
                                    alt_b_budget, star_budget);
            alt_a_budget[kind_index] += 1;
            created[kind.child_a] -= 1;
            chosen = a_keeps_producible ? kind.child_a : kind.child_b;
          } else {
            chosen = can_a ? kind.child_a : kind.child_b;
          }
          if (chosen == kind.child_a) {
            alt_a_budget[kind_index] -= 1;
          } else {
            alt_b_budget[kind_index] -= 1;
          }
          created[chosen] += 1;
          stack.push_back(chosen);
          break;
        }
        case NarrowRule::Kind::kStar: {
          // Allocate the entire remaining star budget to this
          // instance; later instances of the same kind produce zero
          // children, which the star admits.
          BigInt take = star_budget[kind_index];
          star_budget[kind_index] = BigInt(0);
          created[kind.child_a] += take;
          while (take > BigInt(0)) {
            stack.push_back(kind.child_a);
            take -= 1;
          }
          break;
        }
      }
    }
  }

  // Cross-check: the rebuilt instance counts must equal the solution.
  for (size_t kind = 0; kind < kinds_.size(); ++kind) {
    if (created[kind] != solution[kinds_[kind].count]) {
      return Status::Internal(
          "witness reconstruction mismatch on kind " + std::to_string(kind) +
          ": built " + created[kind].ToString() + ", solution says " +
          solution[kinds_[kind].count].ToString() +
          " (flow solution not tree-realizable)");
    }
  }
  return tree;
}

}  // namespace xmlverify
