#include "encoding/regular_encoder.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "trace/trace.h"

namespace xmlverify {

namespace {

std::vector<int> NonRootTypes(const Dtd& dtd) {
  std::vector<int> symbols;
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    if (type != dtd.root()) symbols.push_back(type);
  }
  return symbols;
}

Dfa PathDfa(const Regex& path, const Dtd& dtd) {
  Regex expanded = ExpandWildcard(path, NonRootTypes(dtd));
  return CachedDeterminize(expanded, dtd.num_element_types());
}

// DFA of the realizable root paths of the DTD: words r.t2...tn where
// each step follows a parent-child edge of the DTD graph.
Dfa DtdPathDfa(const Dtd& dtd) {
  // Build as an NFA-shaped regex-free construction: states = a start
  // state, one state per type, one dead state. Encode directly via
  // Nfa (no epsilon moves) and determinize (it is already
  // deterministic, but Determinize also completes it).
  Nfa nfa;
  nfa.alphabet_size = dtd.num_element_types();
  const int num_types = dtd.num_element_types();
  nfa.states.resize(num_types + 2);  // types, start, accept-sink
  const int start = num_types;
  nfa.start = start;
  // The single-accept Thompson shape does not fit "accept everywhere",
  // so add an epsilon-reachable accept state from every type state.
  const int accept = num_types + 1;
  nfa.accept = accept;
  nfa.states[start].moves[dtd.root()].push_back(dtd.root());
  for (int type = 0; type < num_types; ++type) {
    for (int child : dtd.ChildTypes(type)) {
      nfa.states[type].moves[child].push_back(child);
    }
    nfa.states[type].epsilon_moves.push_back(accept);
  }
  return Dfa::Determinize(nfa);
}

// True if some word is accepted by every DFA in `accept_all` and
// rejected by every DFA in `reject_all` (all complete, same
// alphabet). BFS over the product.
bool JointlyRealizable(const std::vector<const Dfa*>& accept_all,
                       const std::vector<const Dfa*>& reject_all) {
  std::vector<const Dfa*> all = accept_all;
  all.insert(all.end(), reject_all.begin(), reject_all.end());
  if (all.empty()) return true;
  const int alphabet = all[0]->alphabet_size();
  std::set<std::vector<int>> seen;
  std::deque<std::vector<int>> frontier;
  std::vector<int> start(all.size());
  for (size_t i = 0; i < all.size(); ++i) start[i] = all[i]->start();
  seen.insert(start);
  frontier.push_back(std::move(start));
  while (!frontier.empty()) {
    std::vector<int> state = std::move(frontier.front());
    frontier.pop_front();
    bool good = true;
    for (size_t i = 0; i < accept_all.size(); ++i) {
      if (!accept_all[i]->IsAccepting(state[i])) {
        good = false;
        break;
      }
    }
    if (good) {
      for (size_t i = 0; i < reject_all.size(); ++i) {
        if (reject_all[i]->IsAccepting(state[accept_all.size() + i])) {
          good = false;
          break;
        }
      }
    }
    if (good) return true;
    for (int symbol = 0; symbol < alphabet; ++symbol) {
      std::vector<int> next(all.size());
      for (size_t i = 0; i < all.size(); ++i) {
        next[i] = all[i]->Next(state[i], symbol);
      }
      if (seen.insert(next).second) frontier.push_back(std::move(next));
    }
  }
  return false;
}

// Union-find for the shared-node components of a cell trace.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    for (int i = 0; i < n; ++i) parent_[i] = i;
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<ConstraintSet> AbsoluteAsRegular(const ConstraintSet& constraints,
                                        const Dtd& dtd) {
  if (constraints.HasRelative()) {
    return Status::InvalidArgument(
        "relative constraints cannot be expressed as regular constraints");
  }
  ConstraintSet result;
  auto path_of = [&dtd](int type) {
    // r._*.tau ; for the root itself, just r.
    if (type == dtd.root()) return Regex::Symbol(type);
    return Regex::Concat(
        Regex::Concat(Regex::Symbol(dtd.root()),
                      Regex::Star(Regex::Wildcard())),
        Regex::Symbol(type));
  };
  for (const AbsoluteKey& key : constraints.absolute_keys()) {
    if (!key.IsUnary()) {
      return Status::Unsupported(
          "multi-attribute keys have no unary regular form "
          "(AC^{reg} is unary by definition)");
    }
    result.Add(RegularKey{path_of(key.type), key.type, key.attributes[0]});
  }
  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    if (!inclusion.IsUnary()) {
      return Status::Unsupported(
          "multi-attribute inclusions have no unary regular form");
    }
    result.Add(RegularInclusion{
        path_of(inclusion.child_type), inclusion.child_type,
        inclusion.child_attributes[0], path_of(inclusion.parent_type),
        inclusion.parent_type, inclusion.parent_attributes[0]});
  }
  for (const RegularKey& key : constraints.regular_keys()) result.Add(key);
  for (const RegularInclusion& inclusion : constraints.regular_inclusions()) {
    result.Add(inclusion);
  }
  return result;
}

int RegularEncoder::InternExpression(Regex path, int type,
                                     const std::string& attribute,
                                     const Dtd& dtd) {
  Dfa dfa = PathDfa(path, dtd);
  for (size_t i = 0; i < expressions_.size(); ++i) {
    const Expression& existing = expressions_[i];
    if (existing.type != type || existing.attribute != attribute) continue;
    if (existing.dfa.ContainedIn(dfa) && dfa.ContainedIn(existing.dfa)) {
      return static_cast<int>(i);
    }
  }
  Expression expression;
  expression.node_path = std::move(path);
  expression.type = type;
  expression.attribute = attribute;
  expression.dfa = std::move(dfa);
  expressions_.push_back(std::move(expression));
  return static_cast<int>(expressions_.size()) - 1;
}

Result<std::unique_ptr<RegularEncoder>> RegularEncoder::Build(
    const Dtd& dtd, const ConstraintSet& constraints, IntegerProgram* program,
    const RegularEncoderOptions& options, const RegularNegation* negation) {
  if (constraints.HasAbsolute() || constraints.HasRelative()) {
    return Status::InvalidArgument(
        "RegularEncoder expects purely regular constraints; use "
        "AbsoluteAsRegular to fold absolute constraints in");
  }
  const int variables_before = program->num_variables();
  const size_t linear_before = program->linear().size();
  const size_t conditionals_before = program->conditionals().size();
  auto encoder = std::unique_ptr<RegularEncoder>(new RegularEncoder());
  encoder->dtd_ = &dtd;

  // Intern all expressions; remember which constraint uses which.
  struct KeyRef { int expression; };
  struct InclusionRef { int child; int parent; };
  std::vector<KeyRef> keys;
  std::vector<InclusionRef> inclusions;
  for (const RegularKey& key : constraints.regular_keys()) {
    int expression =
        encoder->InternExpression(key.node_path, key.type, key.attribute, dtd);
    encoder->expressions_[expression].is_key = true;
    keys.push_back({expression});
  }
  for (const RegularInclusion& inclusion : constraints.regular_inclusions()) {
    int child = encoder->InternExpression(
        inclusion.child_path, inclusion.child_type, inclusion.child_attribute,
        dtd);
    int parent = encoder->InternExpression(inclusion.parent_path,
                                           inclusion.parent_type,
                                           inclusion.parent_attribute, dtd);
    inclusions.push_back({child, parent});
  }
  // Expressions of the negated constraint are interned but do NOT
  // assert their key/inclusion semantics.
  int negated_key_expr = -1;
  int negated_incl_child = -1;
  int negated_incl_parent = -1;
  if (negation != nullptr && negation->key.has_value()) {
    negated_key_expr = encoder->InternExpression(
        negation->key->node_path, negation->key->type,
        negation->key->attribute, dtd);
  }
  if (negation != nullptr && negation->inclusion.has_value()) {
    negated_incl_child = encoder->InternExpression(
        negation->inclusion->child_path, negation->inclusion->child_type,
        negation->inclusion->child_attribute, dtd);
    negated_incl_parent = encoder->InternExpression(
        negation->inclusion->parent_path, negation->inclusion->parent_type,
        negation->inclusion->parent_attribute, dtd);
  }
  const int k = encoder->num_expressions();
  if (k > options.max_expressions) {
    return Status::ResourceExhausted(
        "specification uses " + std::to_string(k) +
        " distinct path expressions; the z_theta block (2^k) exceeds the "
        "configured limit of 2^" + std::to_string(options.max_expressions));
  }

  // State-tagged flow system over the product automaton.
  std::vector<Dfa> components;
  components.reserve(k);
  for (const Expression& expression : encoder->expressions_) {
    components.push_back(expression.dfa);
  }
  ProductDfa product(std::move(components));
  ASSIGN_OR_RETURN(
      encoder->flow_,
      DtdFlowSystem::Build(dtd, k > 0 ? &product : nullptr, program));

  // |nodes_D(beta_i.tau_i)| = sum of y(tau_i, s) over accepting s.
  for (int i = 0; i < k; ++i) {
    Expression& expression = encoder->expressions_[i];
    expression.nodes_var =
        program->NewVariable("nodes(" + std::to_string(i) + ")");
    LinearExpr sum;
    sum.Add(expression.nodes_var, BigInt(1));
    for (const auto& [state, count] :
         encoder->flow_.StatesOf(expression.type)) {
      if (product.Accepts(state, i)) sum.Add(count, BigInt(-1));
    }
    program->AddLinear(std::move(sum), Relation::kEq, BigInt(0),
                       "nodes-sum:" + std::to_string(i));
  }

  // z_theta cells.
  const size_t num_masks = (size_t{1} << k);
  encoder->cell_vars_.reserve(num_masks - 1);
  for (size_t mask = 1; mask < num_masks; ++mask) {
    encoder->cell_vars_.push_back(
        program->NewVariable("z" + std::to_string(mask)));
  }
  auto cell = [&encoder](size_t mask) { return encoder->cell_vars_[mask - 1]; };

  // |values_i| = sum_{theta(i)=1} z_theta ; bounds against nodes.
  for (int i = 0; i < k; ++i) {
    Expression& expression = encoder->expressions_[i];
    expression.values_var =
        program->NewVariable("values(" + std::to_string(i) + ")");
    LinearExpr sum;
    sum.Add(expression.values_var, BigInt(1));
    for (size_t mask = 1; mask < num_masks; ++mask) {
      if (mask & (size_t{1} << i)) sum.Add(cell(mask), BigInt(-1));
    }
    program->AddLinear(std::move(sum), Relation::kEq, BigInt(0), "values-sum");
    // |values| <= |nodes|.
    LinearExpr bound;
    bound.Add(expression.values_var, BigInt(1));
    bound.Add(expression.nodes_var, BigInt(-1));
    program->AddLinear(std::move(bound), Relation::kLe, BigInt(0),
                       "values<=nodes");
    // (|nodes| > 0) -> (|values| > 0): attributes are mandatory.
    LinearExpr positive;
    positive.Add(expression.values_var, BigInt(1));
    program->AddConditional(expression.nodes_var, std::move(positive),
                            Relation::kGe, BigInt(1), "values-populated");
    // Keys: |values| = |nodes|.
    if (expression.is_key) {
      LinearExpr equal;
      equal.Add(expression.values_var, BigInt(1));
      equal.Add(expression.nodes_var, BigInt(-1));
      program->AddLinear(std::move(equal), Relation::kEq, BigInt(0),
                         "key-values=nodes");
    }
  }

  // Zero cells from explicit inclusions and from language containment
  // with matching tau.l.
  std::set<std::pair<int, int>> subset_pairs;  // (i, j): values_i <= values_j
  for (const InclusionRef& inclusion : inclusions) {
    subset_pairs.emplace(inclusion.child, inclusion.parent);
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      const Expression& a = encoder->expressions_[i];
      const Expression& b = encoder->expressions_[j];
      if (a.type == b.type && a.attribute == b.attribute &&
          a.dfa.ContainedIn(b.dfa)) {
        subset_pairs.emplace(i, j);
      }
    }
  }
  for (const auto& [i, j] : subset_pairs) {
    for (size_t mask = 1; mask < num_masks; ++mask) {
      if ((mask & (size_t{1} << i)) && !(mask & (size_t{1} << j))) {
        program->SetUpperBound(cell(mask), BigInt(0));
      }
    }
  }

  // Realizability zero cells. A pool value of cell theta must be
  // placed on concrete nodes: within one (tau, l) group G, every
  // expression i with theta(i)=1 needs a node on a realizable DTD
  // path in L_i avoiding L_j for every j in G with theta(j)=0; and
  // expressions lying under a common KEY expression of the cell must
  // share a single node, so their path languages must jointly
  // intersect. Cells with no such placement are zero. (This is where
  // the school example's "professors cannot be students" interaction
  // is caught: prof-record ids and student-record ids live under the
  // common key on all records, with disjoint path languages.)
  if (options.realizability_cells) {
    Dfa dtd_paths = DtdPathDfa(dtd);
    // Same-(tau,l) language containments.
    std::vector<std::vector<bool>> contained(k, std::vector<bool>(k, false));
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        const Expression& a = encoder->expressions_[i];
        const Expression& b = encoder->expressions_[j];
        contained[i][j] = i != j && a.type == b.type &&
                          a.attribute == b.attribute &&
                          a.dfa.ContainedIn(b.dfa);
      }
    }
    // Group expressions by (tau, l).
    std::map<std::pair<int, std::string>, std::vector<int>> groups;
    for (int i = 0; i < k; ++i) {
      groups[{encoder->expressions_[i].type,
              encoder->expressions_[i].attribute}]
          .push_back(i);
    }
    for (const auto& [tau_l, group] : groups) {
      (void)tau_l;
      const size_t group_size = group.size();
      size_t group_mask = 0;
      for (int i : group) group_mask |= size_t{1} << i;
      // Memoize feasibility per trace S of the group.
      for (size_t trace = 1; trace < (size_t{1} << group_size); ++trace) {
        std::vector<int> in_trace;
        std::vector<int> out_of_trace;
        for (size_t g = 0; g < group_size; ++g) {
          if (trace & (size_t{1} << g)) {
            in_trace.push_back(group[g]);
          } else {
            out_of_trace.push_back(group[g]);
          }
        }
        // Shared-node components: i and K merge when K is a key of
        // the trace and L_i is contained in L_K.
        UnionFind components(static_cast<int>(in_trace.size()));
        for (size_t a = 0; a < in_trace.size(); ++a) {
          if (!encoder->expressions_[in_trace[a]].is_key) continue;
          for (size_t b = 0; b < in_trace.size(); ++b) {
            if (a != b && contained[in_trace[b]][in_trace[a]]) {
              components.Union(static_cast<int>(b), static_cast<int>(a));
            }
          }
        }
        std::map<int, std::vector<int>> component_members;
        for (size_t a = 0; a < in_trace.size(); ++a) {
          component_members[components.Find(static_cast<int>(a))].push_back(
              in_trace[a]);
        }
        bool feasible = true;
        for (const auto& [root_member, members] : component_members) {
          (void)root_member;
          std::vector<const Dfa*> accept_all = {&dtd_paths};
          for (int member : members) {
            accept_all.push_back(&encoder->expressions_[member].dfa);
          }
          std::vector<const Dfa*> reject_all;
          for (int other : out_of_trace) {
            reject_all.push_back(&encoder->expressions_[other].dfa);
          }
          if (!JointlyRealizable(accept_all, reject_all)) {
            feasible = false;
            break;
          }
        }
        if (feasible) continue;
        // Zero every cell whose group trace equals this one.
        size_t trace_bits = 0;
        for (size_t g = 0; g < group_size; ++g) {
          if (trace & (size_t{1} << g)) trace_bits |= size_t{1} << group[g];
        }
        for (size_t mask = 1; mask < num_masks; ++mask) {
          if ((mask & group_mask) == trace_bits) {
            program->SetUpperBound(cell(mask), BigInt(0));
          }
        }
      }
    }
  }

  // Key capacity constraints (Hall-type). A value of a cell theta
  // with theta(K)=1 for a key K occupies exactly ONE node of
  // nodes(K), and the expressions of the cell that are language-
  // contained in K must be witnessed by that same node. Hence, for
  // each trace T over C_K = {i : tau.l matches, L_i included in L_K},
  // the number of values whose cell restricts to T cannot exceed the
  // number of tau_K nodes whose accepting set restricts to T. This is
  // the counting fact that closes, e.g., "a global key implies its
  // path-restricted keys".
  if (options.key_capacities) {
    std::vector<std::vector<bool>> contained(k, std::vector<bool>(k, false));
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        const Expression& a = encoder->expressions_[i];
        const Expression& b = encoder->expressions_[j];
        contained[i][j] = i != j && a.type == b.type &&
                          a.attribute == b.attribute &&
                          a.dfa.ContainedIn(b.dfa);
      }
    }
    for (int key_expr = 0; key_expr < k; ++key_expr) {
      if (!encoder->expressions_[key_expr].is_key) continue;
      size_t c_mask = size_t{1} << key_expr;
      std::vector<int> members = {key_expr};
      for (int i = 0; i < k; ++i) {
        if (contained[i][key_expr]) {
          c_mask |= size_t{1} << i;
          members.push_back(i);
        }
      }
      // Node capacities per C_K-trace, from the product-state
      // acceptance of the flow variables (flow states ARE product
      // states).
      std::map<size_t, LinearExpr> capacity;
      for (const auto& [state, count] :
           encoder->flow_.StatesOf(encoder->expressions_[key_expr].type)) {
        size_t trace = 0;
        for (int member : members) {
          if (product.Accepts(state, member)) trace |= size_t{1} << member;
        }
        if ((trace & (size_t{1} << key_expr)) == 0) continue;  // not a K node
        capacity[trace].Add(count, BigInt(1));
      }
      // One constraint per realized-or-not trace with K set: cells
      // restricting to that trace fit into the nodes of that trace.
      std::set<size_t> traces;
      for (const auto& [trace, expr] : capacity) {
        (void)expr;
        traces.insert(trace);
      }
      for (size_t mask = 1; mask < num_masks; ++mask) {
        if (mask & (size_t{1} << key_expr)) traces.insert(mask & c_mask);
      }
      for (size_t trace : traces) {
        LinearExpr balance;
        for (size_t mask = 1; mask < num_masks; ++mask) {
          if ((mask & c_mask) == trace) balance.Add(cell(mask), BigInt(1));
        }
        if (balance.empty()) continue;
        auto it = capacity.find(trace);
        if (it != capacity.end()) {
          for (const auto& [var, coeff] : it->second.terms()) {
            balance.Add(var, -coeff);
          }
        }
        program->AddLinear(std::move(balance), Relation::kLe, BigInt(0),
                           "key-capacity");
      }
    }
  }

  // Negated constraint, for the implication problem.
  if (negated_key_expr >= 0) {
    const Expression& expression = encoder->expressions_[negated_key_expr];
    // |nodes| >= 2: two nodes are needed to violate a key ...
    LinearExpr two_nodes;
    two_nodes.Add(expression.nodes_var, BigInt(1));
    program->AddLinear(std::move(two_nodes), Relation::kGe, BigInt(2),
                       "neg-key-nodes");
    // ... and they must share a value: |values| <= |nodes| - 1.
    LinearExpr collision;
    collision.Add(expression.values_var, BigInt(1));
    collision.Add(expression.nodes_var, BigInt(-1));
    program->AddLinear(std::move(collision), Relation::kLe, BigInt(-1),
                       "neg-key-collision");
  }
  if (negated_incl_child >= 0) {
    // Some value of the child side lies outside the parent side:
    // sum of cells with theta(child)=1, theta(parent)=0 is >= 1.
    LinearExpr escape;
    for (size_t mask = 1; mask < num_masks; ++mask) {
      if ((mask & (size_t{1} << negated_incl_child)) &&
          !(mask & (size_t{1} << negated_incl_parent))) {
        escape.Add(cell(mask), BigInt(1));
      }
    }
    if (escape.empty()) {
      // Language containment already forces the inclusion: its
      // negation is trivially unsatisfiable.
      program->AddLinear(LinearExpr(), Relation::kGe, BigInt(1),
                         "neg-incl-impossible");
    } else {
      program->AddLinear(std::move(escape), Relation::kGe, BigInt(1),
                         "neg-incl-escape");
    }
  }

  trace::Count("encoder/regular/expressions", k);
  trace::Count("encoder/regular/cells",
               static_cast<int64_t>(encoder->cell_vars_.size()));
  trace::Count("encoder/regular/product_states", product.num_states());
  trace::Count("encoder/regular/variables",
               program->num_variables() - variables_before);
  trace::Count(
      "encoder/regular/constraints",
      static_cast<int64_t>(program->linear().size() - linear_before +
                           program->conditionals().size() -
                           conditionals_before));
  return encoder;
}

Result<XmlTree> RegularEncoder::BuildWitness(
    const std::vector<BigInt>& solution, int64_t max_nodes) const {
  ASSIGN_OR_RETURN(XmlTree tree, flow_.BuildTree(solution, max_nodes));
  const int k = num_expressions();

  // Materialize the s_theta value pools (Lemma 4): z_theta distinct
  // values per cell, each carrying the set of expressions whose value
  // set it must join.
  struct PoolValue {
    std::string text;
    size_t mask;
    // Expressions still awaiting this value (coverage bookkeeping).
    std::set<int> uncovered;
  };
  std::vector<PoolValue> values;
  for (size_t mask = 1; mask < (size_t{1} << k); ++mask) {
    const BigInt& count = solution[cell_vars_[mask - 1]];
    Result<int64_t> count64 = count.TryToInt64();
    if (!count64.ok()) {
      return Status::ResourceExhausted("value pool too large to materialize");
    }
    for (int64_t v = 0; v < *count64; ++v) {
      PoolValue value;
      value.text = "m" + std::to_string(mask) + "_v" + std::to_string(v);
      value.mask = mask;
      for (int i = 0; i < k; ++i) {
        if (mask & (size_t{1} << i)) value.uncovered.insert(i);
      }
      values.push_back(std::move(value));
    }
  }

  // Slots: one per (element, attribute), annotated with the set I of
  // expressions matching it.
  struct Slot {
    NodeId node;
    std::string attribute;
    size_t member_mask;  // expressions i with node in nodes(i), attr l_i
  };
  std::vector<Slot> slots;
  for (NodeId node : tree.AllElements()) {
    int type = tree.TypeOf(node);
    std::vector<int> path = tree.PathFromRoot(node);
    for (const std::string& attribute : dtd_->Attributes(type)) {
      Slot slot;
      slot.node = node;
      slot.attribute = attribute;
      slot.member_mask = 0;
      for (int i = 0; i < k; ++i) {
        const Expression& expression = expressions_[i];
        if (expression.type == type && expression.attribute == attribute &&
            expression.dfa.Accepts(path)) {
          slot.member_mask |= size_t{1} << i;
        }
      }
      slots.push_back(std::move(slot));
    }
  }

  // Assign richer slots first: they are the scarce resource for
  // covering multi-expression cells.
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     return __builtin_popcountll(a.member_mask) >
                            __builtin_popcountll(b.member_mask);
                   });

  // Key distinctness: values already used within each key expression.
  std::vector<std::set<size_t>> used_by_key(k);  // value indices
  int64_t free_counter = 0;
  for (const Slot& slot : slots) {
    if (slot.member_mask == 0) {
      // Unwatched attribute: any fresh value will do.
      tree.SetAttribute(slot.node, slot.attribute,
                        "free_" + std::to_string(free_counter++));
      continue;
    }
    int best = -1;
    int best_score = -1;
    int best_extra = 0;
    for (size_t v = 0; v < values.size(); ++v) {
      // theta must dominate I: the value may only join value sets it
      // belongs to.
      if ((values[v].mask & slot.member_mask) != slot.member_mask) continue;
      // Key distinctness across every key expression watching here.
      bool clashes = false;
      for (int i = 0; i < k; ++i) {
        if ((slot.member_mask & (size_t{1} << i)) && expressions_[i].is_key &&
            used_by_key[i].count(v) > 0) {
          clashes = true;
          break;
        }
      }
      if (clashes) continue;
      // Prefer values gaining the most new coverage, then the least
      // versatile values (smallest cell mask).
      int score = 0;
      for (int i : values[v].uncovered) {
        if (slot.member_mask & (size_t{1} << i)) ++score;
      }
      int extra = __builtin_popcountll(values[v].mask);
      if (score > best_score || (score == best_score && extra < best_extra)) {
        best = static_cast<int>(v);
        best_score = score;
        best_extra = extra;
      }
    }
    if (best < 0) {
      return Status::Internal(
          "no admissible pool value for a witness slot; the greedy value "
          "assignment of Lemma 4 failed (please report: this indicates a "
          "gap between the counting solution and its realization)");
    }
    tree.SetAttribute(slot.node, slot.attribute, values[best].text);
    for (int i = 0; i < k; ++i) {
      if (slot.member_mask & (size_t{1} << i)) {
        values[best].uncovered.erase(i);
        if (expressions_[i].is_key) used_by_key[i].insert(best);
      }
    }
  }

  return tree;
}

}  // namespace xmlverify
