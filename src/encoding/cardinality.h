// C_Sigma for absolute constraints (Lemma 9 and the proof of
// Theorem 3.1): cardinality constraints over |ext(tau)| and
// |ext(tau.l)| variables.
//
//   key  tau[l1..lk] -> tau   |ext(tau)| <= prod_i |ext(tau.l_i)|
//                             (prequadratic chain; k = 1 is linear)
//   incl tau1.l1 <= tau2.l2   |ext(tau1.l1)| <= |ext(tau2.l2)|
//   always                    0 <= |ext(tau.l)| <= |ext(tau)| and
//                             (|ext(tau)| > 0) -> (|ext(tau.l)| > 0)
//
// Sound and complete for AC_{K,FK} (all unary) and for
// AC^{*,1}_{PK,FK} / disjoint AC^{*,1}_{K,FK} (multi-attribute keys
// with the primary or disjointness restriction, unary inclusions) —
// exactly the classes for which the paper proves the counting
// abstraction exact.
#ifndef XMLVERIFY_ENCODING_CARDINALITY_H_
#define XMLVERIFY_ENCODING_CARDINALITY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/shared_cache.h"
#include "base/status.h"
#include "constraints/constraint.h"
#include "encoding/flow_encoder.h"
#include "ilp/linear.h"
#include "xml/dtd.h"

namespace xmlverify {

/// Per-(element type, key signature) analysis memoized across checks:
/// the pairwise-disjointness verdict behind Theorem 3.1's side
/// condition and the prequadratic chain shape of every multi-attribute
/// key of the type. Emitted rows reference program-specific VarIds and
/// are always rebuilt; this analysis is the part that repeats across
/// the specs of a batch manifest.
struct CardinalityKeyPlan {
  bool disjoint = true;
  /// Per key of the type (in constraint order): number of auxiliary
  /// chain variables its prequadratic chain introduces (0 for unary
  /// keys and two-attribute keys).
  std::vector<int> chain_tails;
};

/// Process-wide mutex-guarded cache behind AbsoluteCardinality::Emit,
/// keyed on "type-name|attr,attr,|...". Exposed for statistics and
/// tests; Emit emits cache/cardinality_hits and _misses counters.
SharedCache<CardinalityKeyPlan>& GlobalCardinalityPlanCache();

class AbsoluteCardinality {
 public:
  /// Emits C_Sigma into `program` against the ext-variables of `flow`.
  /// Requirements (checked): constraints are absolute; inclusions are
  /// unary; keys are unary, or multi-attribute with pairwise-disjoint
  /// attribute sets per type (primary implies disjoint).
  /// `forced_empty_types` get |ext(tau)| = 0 (used by the hierarchical
  /// checker to prune inconsistent sub-scopes).
  static Result<AbsoluteCardinality> Emit(
      const Dtd& dtd, const ConstraintSet& constraints,
      const std::vector<int>& forced_empty_types, DtdFlowSystem* flow,
      IntegerProgram* program);

  /// |ext(tau.l)| variable; -1 if tau is unreachable in the DTD.
  VarId AttrVar(int type, const std::string& attribute) const;
  /// |ext(tau)| variable; -1 if unreachable.
  VarId ExtVar(int type) const;

  /// Value of |ext(tau.l)| under a solution (0 if unreachable).
  BigInt AttrCount(int type, const std::string& attribute,
                   const std::vector<BigInt>& solution) const;

 private:
  std::map<std::pair<int, std::string>, VarId> attr_vars_;
  std::map<int, VarId> ext_vars_;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_ENCODING_CARDINALITY_H_
