// DTD narrowing (appendix of Theorem 3.4): rewrites each element type
// definition P(tau) into binary rules over fresh nonterminals, so that
// every production has one of the forms
//   t -> t1,t2   t -> t1|t2   t -> t1*   t -> tau' (tau' in E)
//   t -> S       t -> epsilon
// Symbols 0..num_element_types-1 are the original element types; the
// fresh nonterminals follow.
#ifndef XMLVERIFY_ENCODING_NARROWING_H_
#define XMLVERIFY_ENCODING_NARROWING_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "xml/dtd.h"

namespace xmlverify {

struct NarrowRule {
  enum class Kind {
    kEpsilon,  // t -> epsilon
    kString,   // t -> S
    kElement,  // t -> tau' with tau' in E (symbol id `a`)
    kSeq,      // t -> a, b
    kAlt,      // t -> a | b
    kStar,     // t -> a*
  };
  Kind kind = Kind::kEpsilon;
  int a = -1;
  int b = -1;
};

/// Passive data produced by narrowing; see Build().
struct NarrowedDtd {
  /// One rule per symbol; indices < num_element_types are E types.
  std::vector<NarrowRule> rules;
  /// For nonterminals: the element type whose P(tau) spawned them; for
  /// element types: the type itself.
  std::vector<int> owner;
  int num_element_types = 0;
  int root = 0;

  /// Content models must not contain wildcards.
  static Result<NarrowedDtd> Build(const Dtd& dtd);

  int num_symbols() const { return static_cast<int>(rules.size()); }
  bool IsElementType(int symbol) const { return symbol < num_element_types; }

  std::string SymbolName(const Dtd& dtd, int symbol) const;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_ENCODING_NARROWING_H_
