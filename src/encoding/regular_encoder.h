// Psi(D, Sigma) for regular-path constraints (Theorem 3.4a):
//
//  1. each distinct expression beta_i.tau_i.l_i in Sigma becomes a
//     DFA; their product drives the state-tagged DTD flow system
//     (Lemma 6), giving |nodes_D(beta_i.tau_i)| variables;
//  2. value-partition variables z_theta, one per nonempty subset of
//     expressions, with |values_D(i)| = sum_{theta(i)=1} z_theta
//     (Lemma 4);
//  3. zero cells: z_theta = 0 whenever theta(i)=1, theta(j)=0 and
//     either Sigma contains the inclusion i <= j, or L(beta_i) is
//     contained in L(beta_j) with the same tau.l (containment decided
//     by the automata library);
//  4. keys force |values| = |nodes|; always |values| <= |nodes| and
//     (|nodes| > 0) -> (|values| > 0).
//
// The encoder also rebuilds full witnesses: the flow tree plus an
// attribute-value assignment drawn from per-cell disjoint pools
// (the s_theta sets of Lemma 4).
#ifndef XMLVERIFY_ENCODING_REGULAR_ENCODER_H_
#define XMLVERIFY_ENCODING_REGULAR_ENCODER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint.h"
#include "encoding/flow_encoder.h"
#include "ilp/linear.h"
#include "regex/automaton.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

/// A negated constraint to adjoin to the system, for the implication
/// problem (Proposition 3.6 / Corollary 3.7): Sigma implies phi iff
/// Sigma together with the negation of phi is inconsistent.
///   not-key:       |nodes| >= 2 and |values| <= |nodes| - 1
///   not-inclusion: sum of z_theta with theta(child)=1,
///                  theta(parent)=0 is >= 1
struct RegularNegation {
  std::optional<RegularKey> key;
  std::optional<RegularInclusion> inclusion;
};

struct RegularEncoderOptions {
  /// Cap on distinct path expressions (the z_theta block is 2^k).
  int max_expressions = 16;
  /// Ablation switches — BOTH are required for sound kConsistent
  /// verdicts (see bench_ablation_encoding, which demonstrates the
  /// school example being mis-judged without them); exposed only so
  /// their necessity and cost can be measured.
  bool realizability_cells = true;
  bool key_capacities = true;
};

class RegularEncoder {
 public:
  /// Emits the full system into `program`. Constraints must be purely
  /// regular (fold absolute constraints into regular form first; see
  /// AbsoluteAsRegular).
  static Result<std::unique_ptr<RegularEncoder>> Build(
      const Dtd& dtd, const ConstraintSet& constraints,
      IntegerProgram* program, const RegularEncoderOptions& options = {},
      const RegularNegation* negation = nullptr);

  int num_expressions() const { return static_cast<int>(expressions_.size()); }
  /// Number of z_theta variables (2^k - 1).
  size_t num_cells() const { return cell_vars_.size(); }

  /// |nodes_D(beta_i.tau_i)| variable of expression i.
  VarId NodesVar(int expression) const {
    return expressions_[expression].nodes_var;
  }
  /// |values_D(beta_i.tau_i.l_i)| variable of expression i.
  VarId ValuesVar(int expression) const {
    return expressions_[expression].values_var;
  }

  /// Builds a witness tree realizing an integer solution, including
  /// attribute values; callers should re-validate with CheckDocument.
  Result<XmlTree> BuildWitness(const std::vector<BigInt>& solution,
                               int64_t max_nodes = 1 << 20) const;

 private:
  struct Expression {
    Regex node_path;
    int type;
    std::string attribute;
    Dfa dfa;             // over element types, wildcard expanded
    bool is_key = false;
    VarId nodes_var = -1;
    VarId values_var = -1;
  };

  RegularEncoder() = default;

  // Returns the index of the expression, deduplicating by
  // (type, attribute, language).
  int InternExpression(Regex path, int type, const std::string& attribute,
                       const Dtd& dtd);

  const Dtd* dtd_ = nullptr;
  std::vector<Expression> expressions_;
  std::vector<VarId> cell_vars_;  // z_theta, index = mask - 1
  DtdFlowSystem flow_;
};

/// Re-expresses absolute unary constraints as regular constraints
/// with path r._*.tau (ext(tau) = nodes(r._*.tau), Section 3.2), so
/// they can be mixed with regular constraints in one system.
Result<ConstraintSet> AbsoluteAsRegular(const ConstraintSet& constraints,
                                        const Dtd& dtd);

}  // namespace xmlverify

#endif  // XMLVERIFY_ENCODING_REGULAR_ENCODER_H_
