// Psi_D: cardinality constraints characterizing the trees of a DTD.
//
// The narrowed DTD is viewed as a production system over "kinds"
// (narrow symbol, automaton state). Flow variables count node kinds
// and production uses:
//   * y_k            number of nodes of kind k
//   * for t -> a|b   y = use_a + use_b, children counted per branch
//   * for t -> a*    child total is a free variable star_out with
//                    (star_out >= 1) -> (y >= 1)   [the paper's
//                    "(x_{tau1}>0) -> (x_{tau'}>0)" coding]
//   * y_root = 1
// and for every kind, y_k equals the total contribution from its
// parents. For non-recursive DTDs these flow equations are exact
// (the dependency graph is a DAG). For recursive DTDs orphan cycles
// are excluded with spanning-forest constraints: 0/1 edge markers
// w_e <= contribution(e), every populated kind needs an incoming
// marked edge, and bounded distance variables make marked edges
// strictly root-ward (z_child >= z_parent + 1 - M(1 - w_e)).
//
// When a ProductDfa is supplied, kinds are tagged with its states and
// transitions fire on E-symbol expansions — the Psi_D^Sigma coding of
// Theorem 3.4 (Lemma 6). Without one, there is a single dummy state.
//
// The encoder also rebuilds witness trees from integer solutions by
// expanding production budgets (Lemma 6's tree construction).
#ifndef XMLVERIFY_ENCODING_FLOW_ENCODER_H_
#define XMLVERIFY_ENCODING_FLOW_ENCODER_H_

#include <map>
#include <vector>

#include "base/status.h"
#include "encoding/narrowing.h"
#include "ilp/linear.h"
#include "regex/automaton.h"
#include "xml/dtd.h"
#include "xml/tree.h"

namespace xmlverify {

class DtdFlowSystem {
 public:
  /// Emits Psi_D into `program`. `product` may be null (single state);
  /// if present it must be driven by E-symbol ids and is expanded
  /// lazily over reachable states. `dtd` and `program` must outlive
  /// the system; `product` is only used during Build.
  static Result<DtdFlowSystem> Build(const Dtd& dtd, ProductDfa* product,
                                     IntegerProgram* program);

  /// Count variable y_(type,state); -1 if that kind is unreachable.
  VarId CountVar(int element_type, int state) const;

  /// All reachable (state, y-var) pairs of an element type.
  std::vector<std::pair<int, VarId>> StatesOf(int element_type) const;

  /// Fresh variable constrained to equal the total extent
  /// |ext(type)| = sum over states of y_(type,state). Creates the sum
  /// constraint on first use; -1 if the type is unreachable.
  VarId TotalCountVar(int element_type, IntegerProgram* program);

  /// Reconstructs a tree realizing an integer solution: the built
  /// tree conforms to the DTD and has exactly solution[y_k] nodes of
  /// every kind k. Fails with kResourceExhausted if the tree would
  /// exceed `max_nodes`. Attribute values are NOT assigned.
  Result<XmlTree> BuildTree(const std::vector<BigInt>& solution,
                            int64_t max_nodes = 1 << 20) const;

  /// The state reached by the product automaton at every node of the
  /// built tree equals the state in its kind; exposed for encoders
  /// that need per-state bookkeeping.
  int root_state() const { return root_state_; }

 private:
  struct Kind {
    int symbol;  // narrow-grammar symbol
    int state;   // product state (0 when untagged)
    VarId count = -1;          // y
    VarId alt_use_a = -1;      // kAlt only
    VarId alt_use_b = -1;
    VarId star_out = -1;       // kStar only
    int child_a = -1;          // kind index of first child (-1 if none)
    int child_b = -1;          // kind index of second child
  };

  int KindIndex(int symbol, int state) const;

  // True when every kind still owing instances (created < required)
  // is reachable from `sources` through rule edges with remaining
  // budget. Steers alternative choices in BuildTree away from
  // stranding the tail of a recursive cycle.
  bool RemainderProducible(const std::vector<int>& sources,
                           const std::vector<BigInt>& required,
                           const std::vector<BigInt>& created,
                           const std::vector<BigInt>& alt_a_budget,
                           const std::vector<BigInt>& alt_b_budget,
                           const std::vector<BigInt>& star_budget) const;

  const Dtd* dtd_ = nullptr;
  NarrowedDtd narrowed_;
  std::vector<Kind> kinds_;
  std::map<std::pair<int, int>, int> kind_index_;  // (symbol,state) -> kind
  std::map<int, VarId> total_vars_;                // type -> aggregate var
  int root_kind_ = 0;
  int root_state_ = 0;
};

}  // namespace xmlverify

#endif  // XMLVERIFY_ENCODING_FLOW_ENCODER_H_
