#include "encoding/narrowing.h"

namespace xmlverify {

namespace {

class Narrower {
 public:
  explicit Narrower(const Dtd& dtd) : dtd_(dtd) {
    result_.rules.resize(dtd.num_element_types());
    result_.owner.resize(dtd.num_element_types());
    result_.num_element_types = dtd.num_element_types();
    result_.root = dtd.root();
    for (int type = 0; type < dtd.num_element_types(); ++type) {
      result_.owner[type] = type;
    }
  }

  Result<NarrowedDtd> Run() {
    for (int type = 0; type < dtd_.num_element_types(); ++type) {
      ASSIGN_OR_RETURN(NarrowRule rule, RuleFor(dtd_.Content(type), type));
      result_.rules[type] = rule;
    }
    return std::move(result_);
  }

 private:
  int NewNonterminal(int owner) {
    result_.rules.emplace_back();
    result_.owner.push_back(owner);
    return result_.num_symbols() - 1;
  }

  Result<NarrowRule> RuleFor(const Regex& regex, int owner) {
    NarrowRule rule;
    switch (regex.kind()) {
      case RegexKind::kEpsilon:
        rule.kind = NarrowRule::Kind::kEpsilon;
        return rule;
      case RegexKind::kWildcard:
        return Status::Unsupported(
            "wildcards are not allowed in DTD content models");
      case RegexKind::kSymbol:
        if (regex.symbol() == dtd_.pcdata_symbol()) {
          rule.kind = NarrowRule::Kind::kString;
        } else {
          rule.kind = NarrowRule::Kind::kElement;
          rule.a = regex.symbol();
        }
        return rule;
      case RegexKind::kConcat: {
        rule.kind = NarrowRule::Kind::kSeq;
        ASSIGN_OR_RETURN(rule.a, ChildSymbol(regex.left(), owner));
        ASSIGN_OR_RETURN(rule.b, ChildSymbol(regex.right(), owner));
        return rule;
      }
      case RegexKind::kUnion: {
        rule.kind = NarrowRule::Kind::kAlt;
        ASSIGN_OR_RETURN(rule.a, ChildSymbol(regex.left(), owner));
        ASSIGN_OR_RETURN(rule.b, ChildSymbol(regex.right(), owner));
        return rule;
      }
      case RegexKind::kStar: {
        rule.kind = NarrowRule::Kind::kStar;
        ASSIGN_OR_RETURN(rule.a, ChildSymbol(regex.left(), owner));
        return rule;
      }
    }
    return Status::Internal("unhandled regex kind in narrowing");
  }

  // Returns a fresh nonterminal deriving exactly L(regex).
  Result<int> ChildSymbol(const Regex& regex, int owner) {
    int symbol = NewNonterminal(owner);
    ASSIGN_OR_RETURN(NarrowRule rule, RuleFor(regex, owner));
    result_.rules[symbol] = rule;
    return symbol;
  }

  const Dtd& dtd_;
  NarrowedDtd result_;
};

}  // namespace

Result<NarrowedDtd> NarrowedDtd::Build(const Dtd& dtd) {
  Narrower narrower(dtd);
  return narrower.Run();
}

std::string NarrowedDtd::SymbolName(const Dtd& dtd, int symbol) const {
  if (IsElementType(symbol)) return dtd.TypeName(symbol);
  return dtd.TypeName(owner[symbol]) + "#n" +
         std::to_string(symbol - num_element_types);
}

}  // namespace xmlverify
