#include "encoding/cardinality.h"

#include <algorithm>

#include "trace/trace.h"

namespace xmlverify {

namespace {

// Signature of a type's key structure: type name plus every key's
// attribute list, in constraint order. Constraint order is part of
// the key so chain_tails indexes line up; a reordered but equal set
// is merely a cache miss, never a wrong plan.
std::string KeySignature(const Dtd& dtd, int type,
                         const std::vector<const AbsoluteKey*>& keys) {
  std::string signature = dtd.TypeName(type);
  for (const AbsoluteKey* key : keys) {
    signature += '|';
    for (const std::string& attribute : key->attributes) {
      signature += attribute;
      signature += ',';
    }
  }
  return signature;
}

CardinalityKeyPlan ComputePlan(const std::vector<const AbsoluteKey*>& keys) {
  CardinalityKeyPlan plan;
  for (size_t i = 0; i < keys.size(); ++i) {
    const std::vector<std::string>& attributes = keys[i]->attributes;
    plan.chain_tails.push_back(
        keys[i]->IsUnary() ? 0 : static_cast<int>(attributes.size()) - 2);
    for (size_t j = i + 1; j < keys.size(); ++j) {
      // Exact duplicates state the same constraint and are harmless.
      if (attributes == keys[j]->attributes) continue;
      for (const std::string& attribute : attributes) {
        const std::vector<std::string>& other = keys[j]->attributes;
        if (std::find(other.begin(), other.end(), attribute) != other.end()) {
          plan.disjoint = false;
        }
      }
    }
  }
  return plan;
}

}  // namespace

SharedCache<CardinalityKeyPlan>& GlobalCardinalityPlanCache() {
  // Leaked singleton: safe to use from any thread at any point of
  // program teardown.
  static SharedCache<CardinalityKeyPlan>* cache =
      new SharedCache<CardinalityKeyPlan>();
  return *cache;
}

VarId AbsoluteCardinality::AttrVar(int type,
                                   const std::string& attribute) const {
  auto it = attr_vars_.find({type, attribute});
  return it == attr_vars_.end() ? -1 : it->second;
}

VarId AbsoluteCardinality::ExtVar(int type) const {
  auto it = ext_vars_.find(type);
  return it == ext_vars_.end() ? -1 : it->second;
}

BigInt AbsoluteCardinality::AttrCount(int type, const std::string& attribute,
                                      const std::vector<BigInt>& solution) const {
  VarId var = AttrVar(type, attribute);
  return var < 0 ? BigInt(0) : solution[var];
}

Result<AbsoluteCardinality> AbsoluteCardinality::Emit(
    const Dtd& dtd, const ConstraintSet& constraints,
    const std::vector<int>& forced_empty_types, DtdFlowSystem* flow,
    IntegerProgram* program) {
  if (constraints.HasRegular() || constraints.HasRelative()) {
    return Status::InvalidArgument(
        "AbsoluteCardinality handles absolute constraints only");
  }
  if (!constraints.AbsoluteInclusionsUnary()) {
    return Status::Unsupported(
        "multi-attribute inclusion constraints make consistency "
        "undecidable (SAT(AC^{*,*}) [14]); only unary inclusions are "
        "supported");
  }
  // Per-type key analysis, through the shared plan cache. The
  // disjointness test is the Theorem 3.1 / Corollary 3.3 side
  // condition that AbsoluteKeysDisjoint() computes pairwise; here the
  // verdict (and each key's chain shape) is memoized on the type's
  // key signature, so a batch of related specs computes it once.
  std::map<int, std::vector<const AbsoluteKey*>> keys_by_type;
  for (const AbsoluteKey& key : constraints.absolute_keys()) {
    keys_by_type[key.type].push_back(&key);
  }
  std::map<int, std::shared_ptr<const CardinalityKeyPlan>> plans;
  for (const auto& [type, keys] : keys_by_type) {
    SharedCache<CardinalityKeyPlan>& cache = GlobalCardinalityPlanCache();
    const std::string signature = KeySignature(dtd, type, keys);
    std::shared_ptr<const CardinalityKeyPlan> plan = cache.Lookup(signature);
    if (plan != nullptr) {
      trace::Count("cache/cardinality_hits");
    } else {
      trace::Count("cache/cardinality_misses");
      plan = cache.Insert(signature, ComputePlan(keys));
    }
    if (!plan->disjoint) {
      return Status::Unsupported(
          "multi-attribute keys must be primary or pairwise disjoint per "
          "element type (Theorem 3.1 / Corollary 3.3); overlapping key "
          "sets are outside the decidable fragment");
    }
    plans[type] = std::move(plan);
  }

  const int variables_before = program->num_variables();
  const size_t linear_before = program->linear().size();
  const size_t conditionals_before = program->conditionals().size();
  const size_t prequadratics_before = program->prequadratics().size();

  AbsoluteCardinality cardinality;
  // ext(tau) totals for every reachable type, plus ext(tau.l) for
  // every attribute, with the generic bounds.
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    VarId ext = flow->TotalCountVar(type, program);
    if (ext < 0) continue;  // unreachable: extent is identically empty
    cardinality.ext_vars_[type] = ext;
    for (const std::string& attribute : dtd.Attributes(type)) {
      VarId attr_var = program->NewVariable(
          "ext(" + dtd.TypeName(type) + "." + attribute + ")");
      cardinality.attr_vars_[{type, attribute}] = attr_var;
      // |ext(tau.l)| <= |ext(tau)|.
      LinearExpr at_most;
      at_most.Add(attr_var, BigInt(1));
      at_most.Add(ext, BigInt(-1));
      program->AddLinear(std::move(at_most), Relation::kLe, BigInt(0),
                         "attr<=ext");
      // (|ext(tau)| > 0) -> (|ext(tau.l)| > 0): every element carries
      // the attribute.
      LinearExpr positive;
      positive.Add(attr_var, BigInt(1));
      program->AddConditional(ext, std::move(positive), Relation::kGe,
                              BigInt(1), "attr-populated");
    }
  }

  for (int type : forced_empty_types) {
    VarId ext = cardinality.ExtVar(type);
    if (ext < 0) continue;
    LinearExpr empty;
    empty.Add(ext, BigInt(1));
    program->AddLinear(std::move(empty), Relation::kEq, BigInt(0),
                       "forced-empty:" + dtd.TypeName(type));
  }

  std::map<int, size_t> next_key_index;
  for (const AbsoluteKey& key : constraints.absolute_keys()) {
    const size_t key_index = next_key_index[key.type]++;
    VarId ext = cardinality.ExtVar(key.type);
    if (ext < 0) continue;  // unreachable type: key is vacuous
    if (key.IsUnary()) {
      // |ext(tau)| <= |ext(tau.l)| (with attr<=ext this is equality).
      VarId attr_var = cardinality.AttrVar(key.type, key.attributes[0]);
      LinearExpr at_least;
      at_least.Add(ext, BigInt(1));
      at_least.Add(attr_var, BigInt(-1));
      program->AddLinear(std::move(at_least), Relation::kLe, BigInt(0),
                         "key:" + key.ToString(dtd));
      continue;
    }
    // |ext(tau)| <= prod_i |ext(tau.l_i)| as a prequadratic chain:
    //   ext <= l_1 * t_2,  t_2 <= l_2 * t_3, ...,
    //   t_{k-1} <= l_{k-1} * l_k.
    // The cached plan pins the chain length for this key.
    const int chain_tails = plans.at(key.type)->chain_tails[key_index];
    std::vector<VarId> attr_vars;
    for (const std::string& attribute : key.attributes) {
      attr_vars.push_back(cardinality.AttrVar(key.type, attribute));
    }
    VarId current = ext;
    for (int i = 0; i < chain_tails; ++i) {
      VarId tail = program->NewVariable("pk-chain(" + dtd.TypeName(key.type) +
                                        "," + std::to_string(i) + ")");
      program->AddPrequadratic(current, attr_vars[i], tail);
      current = tail;
    }
    size_t k = attr_vars.size();
    program->AddPrequadratic(current, attr_vars[k - 2], attr_vars[k - 1]);
  }

  for (const AbsoluteInclusion& inclusion : constraints.absolute_inclusions()) {
    VarId child_ext = cardinality.ExtVar(inclusion.child_type);
    if (child_ext < 0) continue;  // no child elements can ever exist
    VarId child_attr = cardinality.AttrVar(inclusion.child_type,
                                           inclusion.child_attributes[0]);
    VarId parent_attr = cardinality.AttrVar(inclusion.parent_type,
                                            inclusion.parent_attributes[0]);
    if (parent_attr < 0) {
      // The parent type is unreachable: the child extent must be empty.
      LinearExpr empty;
      empty.Add(child_ext, BigInt(1));
      program->AddLinear(std::move(empty), Relation::kEq, BigInt(0),
                         "incl-empty:" + inclusion.ToString(dtd));
      continue;
    }
    // |ext(tau1.l1)| <= |ext(tau2.l2)|.
    LinearExpr subset;
    subset.Add(child_attr, BigInt(1));
    subset.Add(parent_attr, BigInt(-1));
    program->AddLinear(std::move(subset), Relation::kLe, BigInt(0),
                       "incl:" + inclusion.ToString(dtd));
  }

  trace::Count("encoder/cardinality/attr_vars",
               static_cast<int64_t>(cardinality.attr_vars_.size()));
  trace::Count("encoder/cardinality/variables",
               program->num_variables() - variables_before);
  trace::Count(
      "encoder/cardinality/constraints",
      static_cast<int64_t>(program->linear().size() - linear_before +
                           program->conditionals().size() -
                           conditionals_before +
                           program->prequadratics().size() -
                           prequadratics_before));
  return cardinality;
}

}  // namespace xmlverify
