// Randomized stress for the exact solver stack: every SAT answer is a
// genuine solution; every UNSAT answer survives a randomized hunt for
// counterexamples; exactness holds under large coefficients.
#include <gtest/gtest.h>

#include "ilp/simplex.h"
#include "ilp/solver.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class RandomIlpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomIlpSweep, SatSolutionsVerifyAndUnsatResistsSampling) {
  uint64_t state = GetParam();
  const int num_vars = 3 + NextRandom(&state) % 3;
  const int num_rows = 3 + NextRandom(&state) % 4;
  const int64_t bound = 8;

  IntegerProgram program;
  for (int v = 0; v < num_vars; ++v) {
    VarId var = program.NewVariable("x" + std::to_string(v));
    program.SetUpperBound(var, BigInt(bound));
  }
  struct Row {
    std::vector<int64_t> coefficients;
    Relation relation;
    int64_t rhs;
  };
  std::vector<Row> rows;
  for (int r = 0; r < num_rows; ++r) {
    Row row;
    for (int v = 0; v < num_vars; ++v) {
      row.coefficients.push_back(
          static_cast<int64_t>(NextRandom(&state) % 7) - 3);
    }
    row.relation = static_cast<Relation>(NextRandom(&state) % 3);
    row.rhs = static_cast<int64_t>(NextRandom(&state) % 21) - 10;
    rows.push_back(row);
    LinearExpr lhs;
    for (int v = 0; v < num_vars; ++v) {
      lhs.Add(v, BigInt(rows.back().coefficients[v]));
    }
    program.AddLinear(std::move(lhs), row.relation, BigInt(row.rhs));
  }

  SolveResult result = IlpSolver().Solve(program);
  ASSERT_NE(result.outcome, SolveOutcome::kUnknown);
  if (result.outcome == SolveOutcome::kSat) {
    EXPECT_TRUE(program.IsSatisfied(result.assignment));
  } else {
    // Sample the box looking for a missed solution.
    for (int probe = 0; probe < 3000; ++probe) {
      std::vector<BigInt> candidate;
      for (int v = 0; v < num_vars; ++v) {
        candidate.push_back(
            BigInt(static_cast<int64_t>(NextRandom(&state) % (bound + 1))));
      }
      EXPECT_FALSE(program.IsSatisfied(candidate))
          << "solver said UNSAT but a solution exists";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

TEST(SimplexStressTest, LargeCoefficientFeasibility) {
  // x = 10^25, y = 2x: exact arithmetic must carry through.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  BigInt huge = BigInt::Pow(BigInt(10), 25);
  LinearExpr pin;
  pin.Add(x, BigInt(1));
  program.AddLinear(std::move(pin), Relation::kEq, huge);
  LinearExpr doubled;
  doubled.Add(y, BigInt(1));
  doubled.Add(x, BigInt(-2));
  program.AddLinear(std::move(doubled), Relation::kEq, BigInt(0));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[y], huge * BigInt(2));
}

TEST(SimplexStressTest, TinyRationalGapsAreSeen) {
  // 1000000x >= 999999 + y, x <= 1, y >= 1: forces x = 1 exactly; a
  // floating-point solver could accept x slightly below 1.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr gap;
  gap.Add(x, BigInt(1000000));
  gap.Add(y, BigInt(-1));
  program.AddLinear(std::move(gap), Relation::kGe, BigInt(999999));
  program.SetUpperBound(x, BigInt(1));
  LinearExpr ylow;
  ylow.Add(y, BigInt(1));
  program.AddLinear(std::move(ylow), Relation::kGe, BigInt(1));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[x], BigInt(1));
}

}  // namespace
}  // namespace xmlverify
