// Dual-simplex warm starts (ResolveLp): verdict equivalence with a
// cold solve, fallback triggers, and solver-level warm-vs-cold
// agreement. The warm path re-solves a child system from the parent's
// exported tableau; its feasibility verdicts must be exactly those of
// a from-scratch phase-1 on the same rows.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

LinearConstraint Make(std::vector<std::pair<VarId, int64_t>> terms,
                      Relation relation, int64_t rhs) {
  LinearConstraint constraint;
  for (auto& [var, coeff] : terms) constraint.lhs.Add(var, BigInt(coeff));
  constraint.relation = relation;
  constraint.rhs = BigInt(rhs);
  return constraint;
}

bool SatisfiedBy(const LinearConstraint& constraint,
                 const std::vector<Rational>& point) {
  Rational lhs(0);
  for (const auto& [var, coeff] : constraint.lhs.terms()) {
    lhs += point[var] * Rational(coeff);
  }
  Rational rhs = Rational(constraint.rhs);
  switch (constraint.relation) {
    case Relation::kLe:
      return lhs <= rhs;
    case Relation::kGe:
      return lhs >= rhs;
    case Relation::kEq:
      return lhs == rhs;
  }
  return false;
}

bool AllSatisfied(const std::vector<LinearConstraint>& constraints,
                  const std::vector<Rational>& point) {
  for (const LinearConstraint& constraint : constraints) {
    if (!SatisfiedBy(constraint, point)) return false;
  }
  for (const Rational& value : point) {
    if (value < Rational(0)) return false;
  }
  return true;
}

SimplexOptions Exporting() {
  SimplexOptions options;
  options.export_warm_state = true;
  return options;
}

TEST(WarmStartTest, ExportProducesStateOnFeasibleSparseSolves) {
  std::vector<LinearConstraint> constraints = {
      Make({{0, 1}, {1, 1}}, Relation::kGe, 3),
      Make({{0, 1}}, Relation::kLe, 4),
      Make({{1, 1}}, Relation::kLe, 4),
  };
  SimplexResult exported =
      SolveLp(2, constraints, Deadline(), nullptr, Exporting());
  ASSERT_TRUE(exported.feasible);
  ASSERT_NE(exported.warm_state, nullptr);
  EXPECT_GT(WarmStateBytes(*exported.warm_state), 0);

  // Without the option nothing is exported; the dense engine never
  // exports regardless.
  EXPECT_EQ(SolveLp(2, constraints).warm_state, nullptr);
  SimplexOptions dense = Exporting();
  dense.sparse = false;
  EXPECT_EQ(SolveLp(2, constraints, Deadline(), nullptr, dense).warm_state,
            nullptr);
}

TEST(WarmStartTest, WarmResolveMatchesColdOnBoundTightening) {
  std::vector<LinearConstraint> base = {
      Make({{0, 1}, {1, 1}}, Relation::kGe, 3),
      Make({{0, 1}}, Relation::kLe, 4),
      Make({{1, 1}}, Relation::kLe, 4),
  };
  SimplexResult parent = SolveLp(2, base, Deadline(), nullptr, Exporting());
  ASSERT_TRUE(parent.feasible);
  ASSERT_NE(parent.warm_state, nullptr);

  // Tightening x <= 1 keeps the system feasible (x=1, y=2).
  std::vector<LinearConstraint> feasible_child = base;
  feasible_child.push_back(Make({{0, 1}}, Relation::kLe, 1));
  SimplexResult warm = ResolveLp(parent.warm_state, feasible_child,
                                 /*delta=*/1, /*num_vars=*/2);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_FALSE(warm.warm_fallback);
  ASSERT_TRUE(warm.feasible);
  EXPECT_TRUE(AllSatisfied(feasible_child, warm.solution));

  // x <= 0 and y <= 2 cannot reach x + y >= 3: warm infeasibility
  // must match the cold verdict.
  std::vector<LinearConstraint> infeasible_child = base;
  infeasible_child.push_back(Make({{0, 1}}, Relation::kLe, 0));
  infeasible_child.push_back(Make({{1, 1}}, Relation::kLe, 2));
  SimplexResult warm_infeasible =
      ResolveLp(parent.warm_state, infeasible_child, /*delta=*/2,
                /*num_vars=*/2);
  EXPECT_FALSE(warm_infeasible.feasible);
  EXPECT_FALSE(SolveLp(2, infeasible_child).feasible);
}

TEST(WarmStartTest, EqualityDeltaRowFallsBackCold) {
  std::vector<LinearConstraint> base = {
      Make({{0, 1}, {1, 1}}, Relation::kLe, 10),
  };
  SimplexResult parent = SolveLp(2, base, Deadline(), nullptr, Exporting());
  ASSERT_NE(parent.warm_state, nullptr);
  std::vector<LinearConstraint> child = base;
  child.push_back(Make({{0, 1}}, Relation::kEq, 3));
  SimplexResult result =
      ResolveLp(parent.warm_state, child, /*delta=*/1, /*num_vars=*/2);
  EXPECT_TRUE(result.warm_fallback);
  EXPECT_FALSE(result.warm_used);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(AllSatisfied(child, result.solution));
}

TEST(WarmStartTest, NullParentFallsBackCold) {
  std::vector<LinearConstraint> child = {
      Make({{0, 2}}, Relation::kGe, 1),
      Make({{0, 2}}, Relation::kLe, 5),
  };
  SimplexResult result = ResolveLp(nullptr, child, /*delta=*/1,
                                   /*num_vars=*/1);
  EXPECT_TRUE(result.warm_fallback);
  EXPECT_TRUE(result.feasible);
}

TEST(WarmStartTest, DenseEngineFallsBackCold) {
  std::vector<LinearConstraint> base = {
      Make({{0, 1}}, Relation::kLe, 5),
  };
  SimplexResult parent = SolveLp(1, base, Deadline(), nullptr, Exporting());
  ASSERT_NE(parent.warm_state, nullptr);
  std::vector<LinearConstraint> child = base;
  child.push_back(Make({{0, 1}}, Relation::kGe, 2));
  SimplexOptions dense;
  dense.sparse = false;
  SimplexResult result = ResolveLp(parent.warm_state, child, /*delta=*/1,
                                   /*num_vars=*/1, Deadline(), nullptr, dense);
  EXPECT_TRUE(result.warm_fallback);
  EXPECT_TRUE(result.feasible);
}

// Seeded sweep: random base systems, random bound-row deltas (the
// exact shape branch-and-bound generates), warm verdict must equal the
// cold verdict on every instance, and feasible warm points must
// satisfy the full child system.
TEST(WarmStartTest, RandomizedSweepAgreesWithCold) {
  uint64_t state = 0x51ed270b0f0162c5ull;
  auto next = [&state](int64_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int64_t>((state >> 33) % static_cast<uint64_t>(bound));
  };
  const int kVars = 3;
  int warm_hits = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<LinearConstraint> base;
    const int rows = 2 + static_cast<int>(next(4));
    for (int row = 0; row < rows; ++row) {
      std::vector<std::pair<VarId, int64_t>> terms;
      for (VarId var = 0; var < kVars; ++var) {
        int64_t coeff = next(7) - 3;
        if (coeff != 0) terms.emplace_back(var, coeff);
      }
      Relation relation = next(4) == 0 ? Relation::kEq
                          : next(2) == 0 ? Relation::kLe
                                         : Relation::kGe;
      base.push_back(Make(std::move(terms), relation, next(13) - 4));
    }
    SimplexResult parent =
        SolveLp(kVars, base, Deadline(), nullptr, Exporting());
    if (!parent.feasible || parent.warm_state == nullptr) continue;

    std::vector<LinearConstraint> child = base;
    const int delta = 1 + static_cast<int>(next(2));
    for (int extra = 0; extra < delta; ++extra) {
      VarId var = static_cast<VarId>(next(kVars));
      Relation relation = next(2) == 0 ? Relation::kLe : Relation::kGe;
      child.push_back(Make({{var, 1}}, relation, next(5)));
    }
    SimplexResult warm =
        ResolveLp(parent.warm_state, child, delta, kVars);
    SimplexResult cold = SolveLp(kVars, child);
    ASSERT_EQ(warm.feasible, cold.feasible)
        << "trial " << trial << ": warm and cold verdicts diverge";
    if (warm.warm_used) ++warm_hits;
    if (warm.feasible) {
      EXPECT_TRUE(AllSatisfied(child, warm.solution)) << "trial " << trial;
    }
  }
  // The sweep must actually exercise the warm path, not just its
  // fallbacks.
  EXPECT_GT(warm_hits, 50);
}

// Solver-level agreement: warm starts may route the search through
// different LP vertices, but the verdict must match the cold pipeline
// on every program, and kSat witnesses must satisfy the program.
TEST(WarmStartTest, SolverVerdictsMatchColdPipeline) {
  struct Case {
    int64_t a, b, c;
  };
  const Case cases[] = {{3, 5, 17}, {3, 5, 2},  {4, 6, 7}, {4, 6, 10},
                        {7, 11, 13}, {9, 12, 30}, {9, 12, 31}, {2, 4, 98}};
  for (const Case& item : cases) {
    IntegerProgram program;
    VarId x = program.NewVariable("x");
    VarId y = program.NewVariable("y");
    LinearExpr expr;
    expr.Add(x, BigInt(item.a)).Add(y, BigInt(item.b));
    program.AddLinear(std::move(expr), Relation::kEq, BigInt(item.c));
    program.SetUpperBound(x, BigInt(50));
    program.SetUpperBound(y, BigInt(50));

    SolverOptions warm_options;
    warm_options.warm_start = true;
    SolverOptions cold_options;
    cold_options.warm_start = false;
    SolveResult warm = IlpSolver(warm_options).Solve(program);
    SolveResult cold = IlpSolver(cold_options).Solve(program);
    EXPECT_EQ(warm.outcome, cold.outcome)
        << item.a << "x + " << item.b << "y = " << item.c;
    if (warm.outcome == SolveOutcome::kSat) {
      EXPECT_TRUE(program.IsSatisfied(warm.assignment));
    }
  }
}

TEST(WarmStartTest, ConditionalProgramsAgreeWarmVsCold) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kGe, BigInt(1));
  LinearExpr ye;
  ye.Add(y, BigInt(1));
  program.AddConditional(x, std::move(ye), Relation::kGe, BigInt(3));
  program.SetUpperBound(y, BigInt(2));

  SolverOptions warm_options;
  warm_options.warm_start = true;
  SolverOptions cold_options;
  cold_options.warm_start = false;
  EXPECT_EQ(IlpSolver(warm_options).Solve(program).outcome,
            SolveOutcome::kUnsat);
  EXPECT_EQ(IlpSolver(cold_options).Solve(program).outcome,
            SolveOutcome::kUnsat);
}

}  // namespace
}  // namespace xmlverify
