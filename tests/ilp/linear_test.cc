// IntegerProgram model layer: expressions, constraints, evaluation,
// bounds, rendering.
#include "ilp/linear.h"

#include <gtest/gtest.h>

namespace xmlverify {
namespace {

TEST(LinearExprTest, TermMergingAndCancellation) {
  LinearExpr expr;
  expr.Add(0, BigInt(2)).Add(1, BigInt(-1)).Add(0, BigInt(3));
  EXPECT_EQ(expr.terms().size(), 2u);
  EXPECT_EQ(expr.terms().at(0), BigInt(5));
  expr.Add(0, BigInt(-5));
  EXPECT_EQ(expr.terms().size(), 1u);  // x0 cancelled away
  expr.Add(2, BigInt(0));
  EXPECT_EQ(expr.terms().size(), 1u);  // zero coefficients dropped
}

TEST(LinearExprTest, EvaluateAndAddExpr) {
  LinearExpr a;
  a.Add(0, BigInt(2)).Add(1, BigInt(3));
  LinearExpr b;
  b.Add(1, BigInt(-3)).Add(2, BigInt(7));
  a.AddExpr(b);
  std::vector<BigInt> assignment = {BigInt(1), BigInt(100), BigInt(2)};
  // 2*1 + 0*100 + 7*2 = 16.
  EXPECT_EQ(a.Evaluate(assignment), BigInt(16));
}

TEST(LinearConstraintTest, SatisfactionPerRelation) {
  LinearConstraint constraint;
  constraint.lhs.Add(0, BigInt(1));
  constraint.rhs = BigInt(5);
  std::vector<BigInt> four = {BigInt(4)};
  std::vector<BigInt> five = {BigInt(5)};
  std::vector<BigInt> six = {BigInt(6)};
  constraint.relation = Relation::kLe;
  EXPECT_TRUE(constraint.IsSatisfied(four));
  EXPECT_TRUE(constraint.IsSatisfied(five));
  EXPECT_FALSE(constraint.IsSatisfied(six));
  constraint.relation = Relation::kGe;
  EXPECT_FALSE(constraint.IsSatisfied(four));
  EXPECT_TRUE(constraint.IsSatisfied(six));
  constraint.relation = Relation::kEq;
  EXPECT_TRUE(constraint.IsSatisfied(five));
  EXPECT_FALSE(constraint.IsSatisfied(four));
}

TEST(IntegerProgramTest, IsSatisfiedCoversAllConstraintClasses) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  LinearExpr sum;
  sum.Add(x, BigInt(1)).Add(y, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kLe, BigInt(10));
  LinearExpr cond;
  cond.Add(y, BigInt(1));
  program.AddConditional(x, std::move(cond), Relation::kGe, BigInt(2));
  program.AddPrequadratic(z, x, y);
  program.SetUpperBound(z, BigInt(6));

  // x=1 requires y>=2; z <= x*y.
  EXPECT_TRUE(program.IsSatisfied({BigInt(1), BigInt(2), BigInt(2)}));
  EXPECT_FALSE(program.IsSatisfied({BigInt(1), BigInt(1), BigInt(1)}));
  EXPECT_TRUE(program.IsSatisfied({BigInt(0), BigInt(0), BigInt(0)}));
  EXPECT_FALSE(program.IsSatisfied({BigInt(2), BigInt(3), BigInt(7)}));
  EXPECT_FALSE(program.IsSatisfied({BigInt(9), BigInt(9), BigInt(0)}));
}

TEST(LinearConstraintTest, ApproxBytesTrackLimbFootprint) {
  LinearConstraint small;
  small.lhs.Add(0, BigInt(3));
  small.relation = Relation::kLe;
  small.rhs = BigInt(7);
  const int64_t small_bytes = ApproxConstraintBytes(small);
  EXPECT_GT(small_bytes, 0);

  // A 4096-bit coefficient must cost at least its limb storage more
  // than the small twin — the accounting is per-value, not per-row.
  LinearConstraint big = small;
  big.lhs.Add(1, BigInt::Pow2(4096));
  EXPECT_GE(ApproxConstraintBytes(big), small_bytes + 4096 / 8);

  LinearConstraint big_rhs = small;
  big_rhs.rhs = BigInt::Pow2(4096);
  EXPECT_GE(ApproxConstraintBytes(big_rhs), small_bytes + 4096 / 8);

  LinearConstraint labeled = small;
  labeled.label.assign(200, 'x');
  EXPECT_GE(ApproxConstraintBytes(labeled), small_bytes + 200);
}

TEST(IntegerProgramTest, UpperBoundsKeepTheTightest) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  program.SetUpperBound(x, BigInt(10));
  program.SetUpperBound(x, BigInt(3));
  program.SetUpperBound(x, BigInt(7));
  ASSERT_NE(program.UpperBound(x), nullptr);
  EXPECT_EQ(*program.UpperBound(x), BigInt(3));
  EXPECT_EQ(program.UpperBound(99), nullptr);
}

TEST(IntegerProgramTest, ToStringNamesVariables) {
  IntegerProgram program;
  VarId x = program.NewVariable("ext(a)");
  LinearExpr expr;
  expr.Add(x, BigInt(2));
  program.AddLinear(std::move(expr), Relation::kGe, BigInt(1), "demo");
  std::string text = program.ToString();
  EXPECT_NE(text.find("2*ext(a) >= 1"), std::string::npos);
  EXPECT_NE(text.find("[demo]"), std::string::npos);
}

}  // namespace
}  // namespace xmlverify
