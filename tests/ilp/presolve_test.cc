#include "ilp/presolve.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/bigint.h"
#include "ilp/linear.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

LinearExpr Expr(std::vector<std::pair<VarId, int64_t>> terms) {
  LinearExpr expr;
  for (const auto& [var, coeff] : terms) expr.Add(var, BigInt(coeff));
  return expr;
}

TEST(PresolveTest, GcdDivisibilityRefutes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 2}, {y, 4}}), Relation::kEq, BigInt(5), "even");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
  EXPECT_NE(info.infeasible_reason().find("gcd"), std::string::npos);
}

TEST(PresolveTest, GcdTightensInequality) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 2}, {y, 4}}), Relation::kLe, BigInt(5), "row");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  EXPECT_GE(info.stats().gcd_tightened, 1);
  // 2x + 4y <= 5 tightens to x + 2y <= 2.
  bool found = false;
  for (const LinearConstraint& row : info.rows()) {
    if (row.label != "row") continue;
    found = true;
    EXPECT_EQ(row.relation, Relation::kLe);
    EXPECT_EQ(row.rhs, BigInt(2));
    for (const auto& [var, coeff] : row.lhs.terms()) {
      (void)var;
      EXPECT_TRUE(coeff == BigInt(1) || coeff == BigInt(2));
    }
  }
  EXPECT_TRUE(found);
}

TEST(PresolveTest, EmptyRowRefutes) {
  IntegerProgram program;
  program.NewVariable("x");
  program.AddLinear(LinearExpr(), Relation::kGe, BigInt(1), "empty");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
}

TEST(PresolveTest, SingletonEqualityFixesAndSubstitutes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 1}}), Relation::kEq, BigInt(5), "fix");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(8), "sum");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  EXPECT_GE(info.stats().vars_fixed, 1);
  // x == 5 fixes x; substituting it turns the sum row into the
  // singleton y <= 3, which pins y (unreferenced afterwards) to its
  // lower bound. Everything presolves away.
  EXPECT_EQ(info.reduced_num_vars(), 0);
  EXPECT_EQ(info.ReducedVar(x), -1);
  EXPECT_EQ(info.ReducedVar(y), -1);
  std::vector<BigInt> original = info.MapSolution({});
  ASSERT_EQ(original.size(), 2u);
  EXPECT_EQ(original[0], BigInt(5));
  EXPECT_EQ(original[1], BigInt(0));
  EXPECT_TRUE(program.IsSatisfied(original));
}

TEST(PresolveTest, SingletonDivisibilityRefutes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  program.AddLinear(Expr({{x, 3}}), Relation::kEq, BigInt(7), "third");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
}

TEST(PresolveTest, ConflictingEqualitiesRefute) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kEq, BigInt(2), "a");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kEq, BigInt(3), "b");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
}

TEST(PresolveTest, CrossedInequalityPairRefutes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(2), "hi");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kGe, BigInt(5), "lo");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
}

TEST(PresolveTest, DuplicateRowsKeepTightest) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(5), "loose");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(3), "tight");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  EXPECT_GE(info.stats().duplicates_merged, 1);
  int survivors = 0;
  for (const LinearConstraint& row : info.rows()) {
    if (row.label == "loose" || row.label == "tight") {
      ++survivors;
      EXPECT_EQ(row.rhs, BigInt(3));
    }
  }
  EXPECT_EQ(survivors, 1);
}

TEST(PresolveTest, AllNegativeRowNormalizes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // -2x - 2y <= -4 is x + y >= 2 after negation and gcd division.
  program.AddLinear(Expr({{x, -2}, {y, -2}}), Relation::kLe, BigInt(-4), "neg");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  bool found = false;
  for (const LinearConstraint& row : info.rows()) {
    if (row.label != "neg") continue;
    found = true;
    EXPECT_EQ(row.relation, Relation::kGe);
    EXPECT_EQ(row.rhs, BigInt(2));
  }
  EXPECT_TRUE(found);
}

TEST(PresolveTest, PositiveRowForcesZeros) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  program.AddLinear(Expr({{x, 1}, {y, 2}}), Relation::kLe, BigInt(0), "zero");
  program.AddLinear(Expr({{x, 1}, {y, 1}, {z, 1}}), Relation::kGe, BigInt(1),
                    "live");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  // x and y are pinned to zero and substituted out; the surviving row
  // becomes the singleton z >= 1, so z pins to its lower bound and the
  // whole system presolves away.
  EXPECT_EQ(info.reduced_num_vars(), 0);
  std::vector<BigInt> original = info.MapSolution({});
  EXPECT_EQ(original[0], BigInt(0));
  EXPECT_EQ(original[1], BigInt(0));
  EXPECT_EQ(original[2], BigInt(1));
  EXPECT_TRUE(program.IsSatisfied(original));
}

TEST(PresolveTest, UpperBoundsFlowIntoBoundRows) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.SetUpperBound(x, BigInt(7));
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kGe, BigInt(1), "row");
  PresolveInfo info = PresolveProgram(program);
  ASSERT_FALSE(info.infeasible());
  bool found_ub = false;
  for (const LinearConstraint& row : info.rows()) {
    if (row.label == "pre-ub" &&
        row.lhs.terms().count(info.ReducedVar(x)) > 0) {
      found_ub = true;
      EXPECT_EQ(row.rhs, BigInt(7));
    }
  }
  EXPECT_TRUE(found_ub);
  (void)y;
}

TEST(PresolveTest, BoundConflictRefutes) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  program.SetUpperBound(x, BigInt(2));
  program.AddLinear(Expr({{x, 1}}), Relation::kGe, BigInt(5), "low");
  PresolveInfo info = PresolveProgram(program);
  EXPECT_TRUE(info.infeasible());
}

TEST(PresolveTest, EliminationDisabledKeepsIdentitySpace) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  program.AddLinear(Expr({{x, 1}}), Relation::kEq, BigInt(5), "fix");
  program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(8), "sum");
  PresolveOptions options;
  options.allow_variable_elimination = false;
  PresolveInfo info = PresolveProgram(program, options);
  ASSERT_FALSE(info.infeasible());
  EXPECT_EQ(info.reduced_num_vars(), 2);
  EXPECT_EQ(info.ReducedVar(x), x);
  EXPECT_EQ(info.ReducedVar(y), y);
  // The fixed variable keeps its column, pinned by bound rows, so an
  // identity-mapped LP point cannot drift from the substituted value.
  bool pinned_below = false;
  bool pinned_above = false;
  for (const LinearConstraint& row : info.rows()) {
    if (row.lhs.terms().count(x) == 0) continue;
    if (row.label == "pre-ub" && row.rhs == BigInt(5)) pinned_above = true;
    if (row.label == "pre-lb" && row.rhs == BigInt(5)) pinned_below = true;
  }
  EXPECT_TRUE(pinned_below);
  EXPECT_TRUE(pinned_above);
}

// End-to-end agreement: the presolved+sparse pipeline and the legacy
// pipeline must return the same verdict, and every SAT witness must
// satisfy the original program.
TEST(PresolveTest, SolverAgreesWithLegacyPipeline) {
  struct Case {
    const char* name;
    IntegerProgram program;
  };
  std::vector<Case> cases;
  {
    Case c{"feasible-chain", {}};
    VarId x = c.program.NewVariable("x");
    VarId y = c.program.NewVariable("y");
    VarId z = c.program.NewVariable("z");
    c.program.AddLinear(Expr({{x, 2}, {y, 4}}), Relation::kLe, BigInt(9), "");
    c.program.AddLinear(Expr({{y, 1}, {z, 3}}), Relation::kGe, BigInt(4), "");
    c.program.AddLinear(Expr({{x, 1}}), Relation::kGe, BigInt(1), "");
    cases.push_back(std::move(c));
  }
  {
    Case c{"infeasible-parity", {}};
    VarId x = c.program.NewVariable("x");
    VarId y = c.program.NewVariable("y");
    c.program.AddLinear(Expr({{x, 2}, {y, 2}}), Relation::kEq, BigInt(7), "");
    cases.push_back(std::move(c));
  }
  {
    Case c{"conditional", {}};
    VarId x = c.program.NewVariable("x");
    VarId y = c.program.NewVariable("y");
    c.program.AddLinear(Expr({{x, 1}}), Relation::kGe, BigInt(1), "");
    c.program.AddConditional(x, Expr({{y, 1}}), Relation::kGe, BigInt(2), "");
    c.program.AddLinear(Expr({{x, 1}, {y, 1}}), Relation::kLe, BigInt(6), "");
    cases.push_back(std::move(c));
  }
  {
    Case c{"eq-system", {}};
    VarId x = c.program.NewVariable("x");
    VarId y = c.program.NewVariable("y");
    c.program.AddLinear(Expr({{x, 3}, {y, 5}}), Relation::kEq, BigInt(19), "");
    c.program.AddLinear(Expr({{x, 1}, {y, -1}}), Relation::kLe, BigInt(2), "");
    cases.push_back(std::move(c));
  }
  for (Case& c : cases) {
    SolverOptions fast;
    SolveResult fast_result = IlpSolver(fast).Solve(c.program);
    SolverOptions legacy;
    legacy.use_presolve = false;
    legacy.use_sparse_simplex = false;
    SolveResult legacy_result = IlpSolver(legacy).Solve(c.program);
    EXPECT_EQ(static_cast<int>(fast_result.outcome),
              static_cast<int>(legacy_result.outcome))
        << c.name;
    if (fast_result.outcome == SolveOutcome::kSat) {
      EXPECT_TRUE(c.program.IsSatisfied(fast_result.assignment)) << c.name;
    }
  }
}

}  // namespace
}  // namespace xmlverify
