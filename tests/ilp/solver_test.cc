// Exact simplex and branch-and-bound integer solver tests.
#include "ilp/solver.h"

#include <gtest/gtest.h>

#include "ilp/simplex.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

LinearConstraint Make(std::vector<std::pair<VarId, int64_t>> terms,
                      Relation relation, int64_t rhs) {
  LinearConstraint constraint;
  for (auto& [var, coeff] : terms) constraint.lhs.Add(var, BigInt(coeff));
  constraint.relation = relation;
  constraint.rhs = BigInt(rhs);
  return constraint;
}

TEST(SimplexTest, FeasibleSystem) {
  // x + y >= 3, x <= 2, y <= 2, x,y >= 0.
  std::vector<LinearConstraint> constraints = {
      Make({{0, 1}, {1, 1}}, Relation::kGe, 3),
      Make({{0, 1}}, Relation::kLe, 2),
      Make({{1, 1}}, Relation::kLe, 2),
  };
  SimplexResult result = SolveLp(2, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.solution[0] + result.solution[1], Rational(3));
  EXPECT_LE(result.solution[0], Rational(2));
  EXPECT_LE(result.solution[1], Rational(2));
}

TEST(SimplexTest, InfeasibleSystem) {
  // x >= 5 and x <= 2.
  std::vector<LinearConstraint> constraints = {
      Make({{0, 1}}, Relation::kGe, 5),
      Make({{0, 1}}, Relation::kLe, 2),
  };
  EXPECT_FALSE(SolveLp(1, constraints).feasible);
}

TEST(SimplexTest, EqualitySystem) {
  // x + 2y = 4, x - is implicitly >= 0; x = 4 - 2y.
  std::vector<LinearConstraint> constraints = {
      Make({{0, 1}, {1, 2}}, Relation::kEq, 4),
      Make({{1, 1}}, Relation::kGe, 1),
  };
  SimplexResult result = SolveLp(2, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution[0] + result.solution[1] * Rational(2),
            Rational(4));
}

TEST(SimplexTest, EmptyLhsHandling) {
  // 0 >= 1 is infeasible; 0 <= 1 is trivially feasible.
  std::vector<LinearConstraint> infeasible = {Make({}, Relation::kGe, 1)};
  EXPECT_FALSE(SolveLp(1, infeasible).feasible);
  std::vector<LinearConstraint> feasible = {Make({}, Relation::kLe, 1)};
  EXPECT_TRUE(SolveLp(1, feasible).feasible);
}

TEST(SimplexTest, DegenerateCyclingGuard) {
  // A classic degenerate system; Bland's rule must terminate.
  std::vector<LinearConstraint> constraints = {
      Make({{0, 1}, {1, -1}}, Relation::kLe, 0),
      Make({{0, -1}, {1, 1}}, Relation::kLe, 0),
      Make({{0, 1}, {1, 1}}, Relation::kGe, 0),
      Make({{0, 1}}, Relation::kLe, 0),
  };
  SimplexResult result = SolveLp(2, constraints);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.solution[0], Rational(0));
  EXPECT_EQ(result.solution[1], Rational(0));
}

TEST(IlpSolverTest, IntegerFeasible) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // 2x + 3y = 12.
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(3));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(12));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_TRUE(program.IsSatisfied(result.assignment));
}

TEST(IlpSolverTest, GcdRefutation) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // 2x + 2y = 5 has no integer solution.
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(2));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(5));
  SolveResult result = IlpSolver().Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnsat);
}

TEST(IlpSolverTest, BranchingFindsNonTrivialPoint) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // 3x + 5y = 17 -> x=4, y=1.
  LinearExpr expr;
  expr.Add(x, BigInt(3)).Add(y, BigInt(5));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(17));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[x] * BigInt(3) + result.assignment[y] * BigInt(5),
            BigInt(17));
}

TEST(IlpSolverTest, LpInfeasibleIsUnsat) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr ge;
  ge.Add(x, BigInt(1));
  program.AddLinear(std::move(ge), Relation::kGe, BigInt(5));
  program.SetUpperBound(x, BigInt(2));
  SolveResult result = IlpSolver().Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnsat);
}

TEST(IlpSolverTest, ConditionalActivation) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // x >= 1; (x >= 1) -> (y >= 3).
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kGe, BigInt(1));
  LinearExpr ye;
  ye.Add(y, BigInt(1));
  program.AddConditional(x, std::move(ye), Relation::kGe, BigInt(3));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_GE(result.assignment[y], BigInt(3));
}

TEST(IlpSolverTest, ConditionalAvoidedByZeroAntecedent) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // (x >= 1) -> (y >= 3), y <= 1. Solution: x = 0.
  LinearExpr ye;
  ye.Add(y, BigInt(1));
  program.AddConditional(x, std::move(ye), Relation::kGe, BigInt(3));
  program.SetUpperBound(y, BigInt(1));
  // Push x upward via a vacuous disjunction: x + y >= 1.
  LinearExpr sum;
  sum.Add(x, BigInt(1)).Add(y, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kGe, BigInt(1));
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_TRUE(program.IsSatisfied(result.assignment));
}

TEST(IlpSolverTest, ConditionalConflictIsUnsat) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kGe, BigInt(1));
  LinearExpr ye;
  ye.Add(y, BigInt(1));
  program.AddConditional(x, std::move(ye), Relation::kGe, BigInt(3));
  program.SetUpperBound(y, BigInt(2));
  SolveResult result = IlpSolver().Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnsat);
}

TEST(IlpSolverTest, PrequadraticSatisfied) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  // x = 6, x <= y*z, y + z <= 5  ->  y=2,z=3 or y=3,z=2.
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kEq, BigInt(6));
  program.AddPrequadratic(x, y, z);
  LinearExpr sum;
  sum.Add(y, BigInt(1)).Add(z, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kLe, BigInt(5));
  SolveResult result =
      IlpSolver().SolveWithDeepening(program, BigInt(8), BigInt(1024));
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_TRUE(program.IsSatisfied(result.assignment));
  EXPECT_LE(result.assignment[x],
            result.assignment[y] * result.assignment[z]);
}

TEST(IlpSolverTest, PrequadraticForcesGrowth) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // x = 9, x <= y*y.
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kEq, BigInt(9));
  program.AddPrequadratic(x, y, y);
  SolveResult result =
      IlpSolver().SolveWithDeepening(program, BigInt(4), BigInt(1024));
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_GE(result.assignment[y], BigInt(3));
}

TEST(IlpSolverTest, DeepeningTerminatesFromDegenerateInitialCaps) {
  // 0 and 1 are fixed points of cap-squaring: before the growth
  // clamp, SolveWithDeepening(program, BigInt(1), ...) re-ran the
  // same capped search forever. The deadline is a hang guard only —
  // the solve must reach the definitive verdict well before it.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kEq, BigInt(9));
  program.AddPrequadratic(x, y, y);
  for (int64_t initial : {0, 1}) {
    SolverOptions options;
    options.deadline = Deadline::AfterMillis(5000);
    SolveResult result = IlpSolver(options).SolveWithDeepening(
        program, BigInt(initial), BigInt(1024));
    ASSERT_EQ(result.outcome, SolveOutcome::kSat)
        << "initial cap " << initial << ": " << result.note;
    EXPECT_GE(result.assignment[y], BigInt(3));
  }
}

TEST(IlpSolverTest, BigCoefficientBranchRowsChargeTheirRealFootprint) {
  // Identical shape, wildly different limb footprints: 2x is pinned
  // to an odd value, so the search must branch on x = B + 1/2 and the
  // branch bound rows carry B-sized integers. The memory accounting
  // sizes constraints by actual limb storage (not a flat per-row
  // guess), so the small twin fits in a budget the huge twin cannot.
  auto build = [](const BigInt& odd_rhs) {
    IntegerProgram program;
    VarId x = program.NewVariable("x");
    LinearExpr ge;
    ge.Add(x, BigInt(2));
    program.AddLinear(std::move(ge), Relation::kGe, odd_rhs);
    LinearExpr le;
    le.Add(x, BigInt(2));
    program.AddLinear(std::move(le), Relation::kLe, odd_rhs);
    return program;
  };
  SolverOptions options;
  // Presolve off: its domain propagation would refute the huge twin
  // before the search ever materializes a node.
  options.use_presolve = false;
  options.budget.set_memory_limit_bytes(8 * 1024);
  SolveResult small = IlpSolver(options).Solve(build(BigInt(9)));
  EXPECT_EQ(small.outcome, SolveOutcome::kUnsat);
  BigInt huge = BigInt::Pow2(200000) + BigInt(1);
  SolveResult big = IlpSolver(options).Solve(build(huge));
  EXPECT_EQ(big.outcome, SolveOutcome::kResourceExhausted) << big.note;
}

TEST(IlpSolverTest, NodeLimitYieldsUnknown) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  // A thin integer-infeasible strip that evades the per-row gcd test
  // and is rationally unbounded: x + y = 2z + 1 together with x = y
  // forces 2x = 2z + 1. Branch and bound cannot close it without a
  // bound, so the node limit must kick in.
  VarId z = program.NewVariable("z");
  LinearExpr strip;
  strip.Add(x, BigInt(1)).Add(y, BigInt(1)).Add(z, BigInt(-2));
  program.AddLinear(std::move(strip), Relation::kEq, BigInt(1));
  LinearExpr diag;
  diag.Add(x, BigInt(1)).Add(y, BigInt(-1));
  program.AddLinear(std::move(diag), Relation::kEq, BigInt(0));
  SolverOptions options;
  options.max_nodes = 10;
  SolveResult result = IlpSolver(options).Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnknown);
}

TEST(IlpSolverTest, BigCoefficientsStayExact) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  BigInt huge = BigInt::Pow(BigInt(10), 30);
  LinearExpr expr;
  expr.Add(x, BigInt(1));
  program.AddLinear(std::move(expr), Relation::kEq, huge);
  SolveResult result = IlpSolver().Solve(program);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[x], huge);
}

// Parameterized feasibility sweep: a x + b y = c over a grid is SAT
// iff gcd(a,b) divides c and a nonnegative solution exists (checked
// by brute force).
struct DiophantineCase {
  int64_t a, b, c;
};

class DiophantineSweep : public ::testing::TestWithParam<DiophantineCase> {};

TEST_P(DiophantineSweep, MatchesBruteForce) {
  const auto& param = GetParam();
  bool brute = false;
  for (int64_t x = 0; x <= 50 && !brute; ++x) {
    for (int64_t y = 0; y <= 50 && !brute; ++y) {
      if (param.a * x + param.b * y == param.c) brute = true;
    }
  }
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(param.a)).Add(y, BigInt(param.b));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(param.c));
  program.SetUpperBound(x, BigInt(50));
  program.SetUpperBound(y, BigInt(50));
  SolveResult result = IlpSolver().Solve(program);
  EXPECT_EQ(result.outcome == SolveOutcome::kSat, brute)
      << param.a << "x + " << param.b << "y = " << param.c;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiophantineSweep,
    ::testing::Values(DiophantineCase{3, 5, 17}, DiophantineCase{3, 5, 1},
                      DiophantineCase{3, 5, 2}, DiophantineCase{4, 6, 7},
                      DiophantineCase{4, 6, 10}, DiophantineCase{7, 11, 13},
                      DiophantineCase{2, 4, 98}, DiophantineCase{9, 12, 30},
                      DiophantineCase{9, 12, 31}, DiophantineCase{1, 1, 0}));

}  // namespace
}  // namespace xmlverify
