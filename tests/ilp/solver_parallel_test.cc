// Parallel branch-and-bound: the work-stealing node pool must be a
// determinism-preserving drop-in for the serial loop. Verdicts AND
// kSat witnesses are identical at any job count (canonical node
// order: the first definitive leaf in serial DFS preorder wins), and
// the shared exploration-order convention — the >= / growth child
// first, for all three branch kinds — is locked down here.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "base/deadline.h"
#include "ilp/solver.h"

namespace xmlverify {
namespace {

SolveResult SolveWithJobs(const IntegerProgram& program, int jobs,
                          uint64_t seed = 0) {
  SolverOptions options;
  options.jobs = jobs;
  options.seed = seed;
  return IlpSolver(options).Solve(program);
}

void ExpectSameDecision(const IntegerProgram& program) {
  SolveResult serial = SolveWithJobs(program, 1);
  for (int jobs : {2, 4, 8}) {
    SolveResult parallel = SolveWithJobs(program, jobs, /*seed=*/jobs);
    ASSERT_EQ(parallel.outcome, serial.outcome) << "jobs=" << jobs;
    // The canonical-order rule makes the witness itself deterministic,
    // not just the verdict.
    EXPECT_EQ(parallel.assignment, serial.assignment) << "jobs=" << jobs;
  }
}

TEST(SolverParallelTest, LinearSweepMatchesSerial) {
  struct Case {
    int64_t a, b, c;
  };
  const Case cases[] = {{3, 5, 17}, {3, 5, 1},  {3, 5, 2},   {4, 6, 7},
                        {4, 6, 10}, {7, 11, 13}, {2, 4, 98},  {9, 12, 30},
                        {9, 12, 31}, {1, 1, 0}};
  for (const Case& item : cases) {
    IntegerProgram program;
    VarId x = program.NewVariable("x");
    VarId y = program.NewVariable("y");
    LinearExpr expr;
    expr.Add(x, BigInt(item.a)).Add(y, BigInt(item.b));
    program.AddLinear(std::move(expr), Relation::kEq, BigInt(item.c));
    program.SetUpperBound(x, BigInt(50));
    program.SetUpperBound(y, BigInt(50));
    ExpectSameDecision(program);
  }
}

TEST(SolverParallelTest, ConditionalProgramsMatchSerial) {
  // x >= 1 triggers (x >= 1) -> (y >= 3); y's bound decides SAT/UNSAT.
  for (int64_t y_cap : {2, 5}) {
    IntegerProgram program;
    VarId x = program.NewVariable("x");
    VarId y = program.NewVariable("y");
    LinearExpr xe;
    xe.Add(x, BigInt(1));
    program.AddLinear(std::move(xe), Relation::kGe, BigInt(1));
    LinearExpr ye;
    ye.Add(y, BigInt(1));
    program.AddConditional(x, std::move(ye), Relation::kGe, BigInt(3));
    program.SetUpperBound(y, BigInt(y_cap));
    ExpectSameDecision(program);
  }
}

TEST(SolverParallelTest, PrequadraticDeepeningMatchesSerial) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kEq, BigInt(6));
  program.AddPrequadratic(x, y, z);
  LinearExpr sum;
  sum.Add(y, BigInt(1)).Add(z, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kLe, BigInt(5));

  SolverOptions serial_options;
  serial_options.jobs = 1;
  SolveResult serial = IlpSolver(serial_options).SolveWithDeepening(
      program, BigInt(8), BigInt(1024));
  ASSERT_EQ(serial.outcome, SolveOutcome::kSat);
  for (int jobs : {2, 4}) {
    SolverOptions options;
    options.jobs = jobs;
    options.seed = static_cast<uint64_t>(jobs);
    SolveResult parallel = IlpSolver(options).SolveWithDeepening(
        program, BigInt(8), BigInt(1024));
    ASSERT_EQ(parallel.outcome, SolveOutcome::kSat) << "jobs=" << jobs;
    EXPECT_EQ(parallel.assignment, serial.assignment) << "jobs=" << jobs;
  }
}

// Locks the unified child-order convention (the >= / growth child is
// explored first, order bit 0) for the fractional branch. With
// presolve off, { 2x >= 1, x + y >= 2 } roots at the vertex
// (1/2, 3/2): branching on x, the <= child (x <= 0) contradicts
// 2x >= 1 outright, while the >= child (x >= 1) solves integrally at
// (1, 1). Exploring >= first reaches SAT at node 2 and the discard
// rule drains the <= child unprocessed; the historical <=-first order
// would have to process the infeasible child, making 3 nodes.
TEST(SolverParallelTest, NodeOrderConventionPrefersGrowthChild) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  LinearExpr half;
  half.Add(x, BigInt(2));
  program.AddLinear(std::move(half), Relation::kGe, BigInt(1));
  LinearExpr sum;
  sum.Add(x, BigInt(1)).Add(y, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kGe, BigInt(2));

  for (int jobs : {1, 4}) {
    SolverOptions options;
    options.use_presolve = false;
    options.jobs = jobs;
    SolveResult result = IlpSolver(options).Solve(program);
    ASSERT_EQ(result.outcome, SolveOutcome::kSat) << "jobs=" << jobs;
    EXPECT_EQ(result.assignment[x], BigInt(1)) << "jobs=" << jobs;
    EXPECT_EQ(result.assignment[y], BigInt(1)) << "jobs=" << jobs;
    EXPECT_EQ(result.nodes_explored, 2) << "jobs=" << jobs;
  }
}

// Same lock for the prequadratic branch, which historically explored
// the <= child first (the opposite of the fractional branch). The
// root candidate is (x=6, y=0, z=0) with x <= y*z violated; the
// <= child pins y <= 0 and linearizes to x <= 0, contradicting x = 6,
// while the >= child (y >= 1) solves to a pq-satisfying integral
// vertex immediately. Growth-first finds SAT at node 2; the
// historical order would need a third node for the infeasible child.
TEST(SolverParallelTest, PrequadraticBranchExploresGrowthFirst) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  LinearExpr xe;
  xe.Add(x, BigInt(1));
  program.AddLinear(std::move(xe), Relation::kEq, BigInt(6));
  program.AddPrequadratic(x, y, z);
  LinearExpr sum;
  sum.Add(y, BigInt(1)).Add(z, BigInt(1));
  program.AddLinear(std::move(sum), Relation::kLe, BigInt(7));

  SolverOptions options;
  options.variable_cap = BigInt(16);
  SolveResult serial = IlpSolver(options).Solve(program);
  ASSERT_EQ(serial.outcome, SolveOutcome::kSat);
  EXPECT_TRUE(program.IsSatisfied(serial.assignment));
  EXPECT_EQ(serial.nodes_explored, 2);
  for (int jobs : {2, 4}) {
    SolverOptions parallel_options = options;
    parallel_options.jobs = jobs;
    SolveResult parallel = IlpSolver(parallel_options).Solve(program);
    ASSERT_EQ(parallel.outcome, SolveOutcome::kSat) << "jobs=" << jobs;
    EXPECT_EQ(parallel.assignment, serial.assignment) << "jobs=" << jobs;
  }
}

// A fully forced UNSAT tree (x pinned to 1/2, both children LP-
// infeasible) explores exactly root + two children. UNSAT requires a
// full drain, so the count is schedule-independent. Presolve is off:
// it would refute the fractional fixpoint before any search.
TEST(SolverParallelTest, UnsatNodeCountIsDeterministicAcrossJobs) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr ge;
  ge.Add(x, BigInt(2));
  program.AddLinear(std::move(ge), Relation::kGe, BigInt(1));
  LinearExpr le;
  le.Add(x, BigInt(2));
  program.AddLinear(std::move(le), Relation::kLe, BigInt(1));

  auto solve = [&program](int jobs) {
    SolverOptions options;
    options.use_presolve = false;
    options.jobs = jobs;
    options.seed = 7;
    return IlpSolver(options).Solve(program);
  };
  SolveResult serial = solve(1);
  ASSERT_EQ(serial.outcome, SolveOutcome::kUnsat);
  EXPECT_EQ(serial.nodes_explored, 3);
  for (int jobs : {2, 4}) {
    SolveResult parallel = solve(jobs);
    EXPECT_EQ(parallel.outcome, SolveOutcome::kUnsat) << "jobs=" << jobs;
    EXPECT_EQ(parallel.nodes_explored, serial.nodes_explored)
        << "jobs=" << jobs;
  }
}

TEST(SolverParallelTest, ParallelRespectsNodeLimit) {
  // The unbounded thin strip from the serial node-limit test: no
  // verdict is reachable, so the limit must fire under any schedule.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  VarId y = program.NewVariable("y");
  VarId z = program.NewVariable("z");
  LinearExpr strip;
  strip.Add(x, BigInt(1)).Add(y, BigInt(1)).Add(z, BigInt(-2));
  program.AddLinear(std::move(strip), Relation::kEq, BigInt(1));
  LinearExpr diag;
  diag.Add(x, BigInt(1)).Add(y, BigInt(-1));
  program.AddLinear(std::move(diag), Relation::kEq, BigInt(0));
  SolverOptions options;
  options.max_nodes = 10;
  options.jobs = 4;
  SolveResult result = IlpSolver(options).Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnknown);
  EXPECT_LE(result.nodes_explored, 10 + 4);  // at most one overshoot per worker
}

TEST(SolverParallelTest, ParallelRespectsExpiredDeadline) {
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr expr;
  expr.Add(x, BigInt(3));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(9));
  SolverOptions options;
  options.jobs = 4;
  options.deadline = Deadline::AfterMillis(0);
  SolveResult result = IlpSolver(options).Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kDeadlineExceeded);
}

TEST(SolverParallelTest, JobsAboveNodeCountStillDrain) {
  // More workers than the tree has nodes: idle workers must park and
  // exit cleanly once the pool drains.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(x, BigInt(1));
  program.AddLinear(std::move(expr), Relation::kEq, BigInt(9));
  SolveResult result = SolveWithJobs(program, 8);
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[x], BigInt(3));
}

}  // namespace
}  // namespace xmlverify
