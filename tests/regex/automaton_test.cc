#include "regex/automaton.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

constexpr int kAlphabet = 3;  // symbols 0, 1, 2

Regex Sym(int s) { return Regex::Symbol(s); }

Dfa Compile(const Regex& regex) {
  return Dfa::Determinize(BuildNfa(regex, kAlphabet));
}

TEST(AutomatonTest, SymbolAcceptsExactlyItself) {
  Dfa dfa = Compile(Sym(1));
  EXPECT_TRUE(dfa.Accepts({1}));
  EXPECT_FALSE(dfa.Accepts({0}));
  EXPECT_FALSE(dfa.Accepts({}));
  EXPECT_FALSE(dfa.Accepts({1, 1}));
}

TEST(AutomatonTest, EpsilonAcceptsEmptyOnly) {
  Dfa dfa = Compile(Regex::Epsilon());
  EXPECT_TRUE(dfa.Accepts({}));
  EXPECT_FALSE(dfa.Accepts({0}));
}

TEST(AutomatonTest, ConcatUnionStar) {
  // (0.1 | 2)* over {0,1,2}.
  Dfa dfa = Compile(
      Regex::Star(Regex::Union(Regex::Concat(Sym(0), Sym(1)), Sym(2))));
  EXPECT_TRUE(dfa.Accepts({}));
  EXPECT_TRUE(dfa.Accepts({2}));
  EXPECT_TRUE(dfa.Accepts({0, 1}));
  EXPECT_TRUE(dfa.Accepts({0, 1, 2, 0, 1}));
  EXPECT_FALSE(dfa.Accepts({0}));
  EXPECT_FALSE(dfa.Accepts({1, 0}));
}

TEST(AutomatonTest, WildcardMatchesWholeAlphabet) {
  Dfa dfa = Compile(Regex::Concat(Regex::Wildcard(), Sym(2)));
  EXPECT_TRUE(dfa.Accepts({0, 2}));
  EXPECT_TRUE(dfa.Accepts({1, 2}));
  EXPECT_TRUE(dfa.Accepts({2, 2}));
  EXPECT_FALSE(dfa.Accepts({2}));
  EXPECT_FALSE(dfa.Accepts({2, 1}));
}

TEST(AutomatonTest, IsEmpty) {
  EXPECT_FALSE(Compile(Sym(0)).IsEmpty());
  // 0 intersected with 1 is empty; emulate with containment checks
  // below — a regex with empty language needs intersection, so build
  // it via the product in ContainedIn.
  Dfa zero = Compile(Sym(0));
  Dfa one = Compile(Sym(1));
  EXPECT_FALSE(zero.Intersects(one));
  EXPECT_TRUE(zero.Intersects(zero));
}

TEST(AutomatonTest, Containment) {
  Dfa small = Compile(Regex::Concat(Sym(0), Sym(1)));
  Dfa big = Compile(Regex::Concat(Regex::Star(Regex::Wildcard()),
                                  Sym(1)));  // _* . 1
  EXPECT_TRUE(small.ContainedIn(big));
  EXPECT_FALSE(big.ContainedIn(small));
  EXPECT_TRUE(small.ContainedIn(small));
}

TEST(AutomatonTest, ContainmentOfUnions) {
  Dfa u = Compile(Regex::Union(Sym(0), Sym(1)));
  Dfa w = Compile(Regex::Wildcard());
  EXPECT_TRUE(u.ContainedIn(w));
  EXPECT_FALSE(w.ContainedIn(u));  // symbol 2 is in w only
}

TEST(ProductDfaTest, TracksComponentsIndependently) {
  // Component 0: ends with 0; component 1: contains a 1.
  Dfa ends0 = Compile(Regex::Concat(Regex::Star(Regex::Wildcard()), Sym(0)));
  Dfa has1 = Compile(Regex::ConcatAll({Regex::Star(Regex::Wildcard()), Sym(1),
                                       Regex::Star(Regex::Wildcard())}));
  ProductDfa product({ends0, has1});
  int state = product.start();
  EXPECT_FALSE(product.Accepts(state, 0));
  EXPECT_FALSE(product.Accepts(state, 1));
  state = product.Next(state, 1);
  EXPECT_FALSE(product.Accepts(state, 0));
  EXPECT_TRUE(product.Accepts(state, 1));
  state = product.Next(state, 0);
  EXPECT_TRUE(product.Accepts(state, 0));
  EXPECT_TRUE(product.Accepts(state, 1));
  state = product.Next(state, 2);
  EXPECT_FALSE(product.Accepts(state, 0));
  EXPECT_TRUE(product.Accepts(state, 1));
}

TEST(ProductDfaTest, StateInterningIsStable) {
  Dfa any = Compile(Regex::Star(Regex::Wildcard()));
  ProductDfa product({any});
  int a = product.Next(product.start(), 0);
  int b = product.Next(product.start(), 1);
  // The all-accepting single-state DFA loops to itself.
  EXPECT_EQ(a, b);
  EXPECT_EQ(product.Next(a, 2), a);
}

// Property sweep: determinization preserves the language of random
// regexes, checked against a direct recursive matcher.
bool Matches(const Regex& r, const std::vector<int>& word, size_t begin,
             size_t end) {
  switch (r.kind()) {
    case RegexKind::kEpsilon:
      return begin == end;
    case RegexKind::kSymbol:
      return end == begin + 1 && word[begin] == r.symbol();
    case RegexKind::kWildcard:
      return end == begin + 1;
    case RegexKind::kUnion:
      return Matches(r.left(), word, begin, end) ||
             Matches(r.right(), word, begin, end);
    case RegexKind::kConcat:
      for (size_t mid = begin; mid <= end; ++mid) {
        if (Matches(r.left(), word, begin, mid) &&
            Matches(r.right(), word, mid, end)) {
          return true;
        }
      }
      return false;
    case RegexKind::kStar:
      if (begin == end) return true;
      for (size_t mid = begin + 1; mid <= end; ++mid) {
        if (Matches(r.left(), word, begin, mid) &&
            Matches(r, word, mid, end)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

class AutomatonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AutomatonPropertyTest, DfaAgreesWithRecursiveMatcher) {
  // A deterministic pseudo-random regex per seed.
  uint64_t state = static_cast<uint64_t>(GetParam()) * 2654435761u + 17;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state >> 33);
  };
  std::function<Regex(int)> random_regex = [&](int depth) -> Regex {
    int pick = next() % (depth <= 0 ? 3 : 6);
    switch (pick) {
      case 0: return Regex::Epsilon();
      case 1: return Regex::Symbol(next() % kAlphabet);
      case 2: return Regex::Wildcard();
      case 3: return Regex::Concat(random_regex(depth - 1),
                                   random_regex(depth - 1));
      case 4: return Regex::Union(random_regex(depth - 1),
                                  random_regex(depth - 1));
      default: return Regex::Star(random_regex(depth - 1));
    }
  };
  Regex regex = random_regex(3);
  Dfa dfa = Compile(regex);
  // All words of length <= 4 over the alphabet.
  std::vector<std::vector<int>> words = {{}};
  for (int len = 0; len < 4; ++len) {
    size_t count = words.size();
    for (size_t w = 0; w < count; ++w) {
      if (words[w].size() != static_cast<size_t>(len)) continue;
      for (int symbol = 0; symbol < kAlphabet; ++symbol) {
        std::vector<int> extended = words[w];
        extended.push_back(symbol);
        words.push_back(std::move(extended));
      }
    }
  }
  for (const std::vector<int>& word : words) {
    EXPECT_EQ(dfa.Accepts(word), Matches(regex, word, 0, word.size()))
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace xmlverify
