#include "regex/regex.h"

#include <gtest/gtest.h>

#include <map>

#include "regex/automaton.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

// Small fixed alphabet for parser tests.
int Resolve(const std::string& name) {
  static const std::map<std::string, int> kSymbols = {
      {"a", 0}, {"b", 1}, {"c", 2}, {"student", 3}, {"prof", 4}};
  auto it = kSymbols.find(name);
  return it == kSymbols.end() ? -1 : it->second;
}

std::string NameOf(int symbol) {
  static const char* kNames[] = {"a", "b", "c", "student", "prof"};
  return kNames[symbol];
}

TEST(RegexTest, ParseAtoms) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a", Resolve));
  EXPECT_EQ(r.kind(), RegexKind::kSymbol);
  EXPECT_EQ(r.symbol(), 0);

  ASSERT_OK_AND_ASSIGN(Regex wildcard, ParseRegex("_", Resolve));
  EXPECT_EQ(wildcard.kind(), RegexKind::kWildcard);

  ASSERT_OK_AND_ASSIGN(Regex epsilon, ParseRegex("%", Resolve));
  EXPECT_EQ(epsilon.kind(), RegexKind::kEpsilon);
}

TEST(RegexTest, ParsePrecedence) {
  // Union binds loosest, then concatenation, then star.
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a.b|c*", Resolve));
  EXPECT_EQ(r.kind(), RegexKind::kUnion);
  EXPECT_EQ(r.left().kind(), RegexKind::kConcat);
  EXPECT_EQ(r.right().kind(), RegexKind::kStar);
}

TEST(RegexTest, ParseParenthesesAndWildcardStar) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a._*.(student|prof)", Resolve));
  EXPECT_EQ(r.ToString(NameOf), "a._*.(student|prof)");
}

TEST(RegexTest, PlusAndOptionalSugar) {
  ASSERT_OK_AND_ASSIGN(Regex plus, ParseRegex("a+", Resolve));
  // a+ == a.a*
  EXPECT_EQ(plus.kind(), RegexKind::kConcat);
  EXPECT_FALSE(plus.MatchesEmpty());

  ASSERT_OK_AND_ASSIGN(Regex opt, ParseRegex("a?", Resolve));
  EXPECT_TRUE(opt.MatchesEmpty());
}

TEST(RegexTest, UnderscorePrefixedNameIsNotWildcard) {
  auto resolve = [](const std::string& name) {
    return name == "_foo" ? 7 : -1;
  };
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("_foo", resolve));
  EXPECT_EQ(r.kind(), RegexKind::kSymbol);
  EXPECT_EQ(r.symbol(), 7);
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(ParseRegex("", Resolve).ok());
  EXPECT_FALSE(ParseRegex("(a", Resolve).ok());
  EXPECT_FALSE(ParseRegex("a)", Resolve).ok());
  EXPECT_FALSE(ParseRegex("unknown", Resolve).ok());
  EXPECT_FALSE(ParseRegex("a..b", Resolve).ok());
  EXPECT_EQ(ParseRegex("zzz", Resolve).status().code(), StatusCode::kNotFound);
}

TEST(RegexTest, MatchesEmpty) {
  ASSERT_OK_AND_ASSIGN(Regex star, ParseRegex("a*", Resolve));
  EXPECT_TRUE(star.MatchesEmpty());
  ASSERT_OK_AND_ASSIGN(Regex concat, ParseRegex("a*.b*", Resolve));
  EXPECT_TRUE(concat.MatchesEmpty());
  ASSERT_OK_AND_ASSIGN(Regex strict, ParseRegex("a*.b", Resolve));
  EXPECT_FALSE(strict.MatchesEmpty());
  ASSERT_OK_AND_ASSIGN(Regex choice, ParseRegex("a|%", Resolve));
  EXPECT_TRUE(choice.MatchesEmpty());
}

TEST(RegexTest, IsStarFree) {
  ASSERT_OK_AND_ASSIGN(Regex no_star, ParseRegex("a.(b|c)", Resolve));
  EXPECT_TRUE(no_star.IsStarFree());
  ASSERT_OK_AND_ASSIGN(Regex with_star, ParseRegex("a.(b|c*)", Resolve));
  EXPECT_FALSE(with_star.IsStarFree());
}

TEST(RegexTest, SymbolsCollectsDistinct) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a.b.a|c", Resolve));
  std::vector<int> symbols = r.Symbols();
  EXPECT_EQ(symbols, (std::vector<int>{0, 1, 2}));
}

TEST(RegexTest, RemapSymbols) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a.(b|c)*", Resolve));
  Regex remapped = RemapSymbols(r, [](int s) { return s + 10; });
  std::vector<int> symbols = remapped.Symbols();
  EXPECT_EQ(symbols, (std::vector<int>{10, 11, 12}));
}

TEST(RegexTest, ExpandWildcard) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a._*.b", Resolve));
  Regex expanded = ExpandWildcard(r, {1, 2});
  // No wildcard nodes remain.
  std::function<bool(const Regex&)> has_wildcard = [&](const Regex& e) {
    switch (e.kind()) {
      case RegexKind::kWildcard: return true;
      case RegexKind::kConcat:
      case RegexKind::kUnion:
        return has_wildcard(e.left()) || has_wildcard(e.right());
      case RegexKind::kStar: return has_wildcard(e.left());
      default: return false;
    }
  };
  EXPECT_FALSE(has_wildcard(expanded));
  EXPECT_TRUE(has_wildcard(r));
}

TEST(RegexTest, BoundedRepetition) {
  // a{3} == a.a.a
  ASSERT_OK_AND_ASSIGN(Regex exact, ParseRegex("a{3}", Resolve));
  EXPECT_FALSE(exact.MatchesEmpty());
  EXPECT_TRUE(exact.IsStarFree());

  // a{0,2}: empty allowed, star-free.
  ASSERT_OK_AND_ASSIGN(Regex range, ParseRegex("a{0,2}", Resolve));
  EXPECT_TRUE(range.MatchesEmpty());
  EXPECT_TRUE(range.IsStarFree());

  // a{2,}: open upper bound uses a star.
  ASSERT_OK_AND_ASSIGN(Regex open, ParseRegex("a{2,}", Resolve));
  EXPECT_FALSE(open.MatchesEmpty());
  EXPECT_FALSE(open.IsStarFree());

  EXPECT_FALSE(ParseRegex("a{3,2}", Resolve).ok());
  EXPECT_FALSE(ParseRegex("a{", Resolve).ok());
  EXPECT_FALSE(ParseRegex("a{x}", Resolve).ok());
}

TEST(RegexTest, RepetitionExpansionIsCapped) {
  // An oversized repetition is a statement about the input, not this
  // process's memory: InvalidArgument, never ResourceExhausted (which
  // would invite budget-escalated retries that cannot succeed).
  EXPECT_EQ(ParseRegex("a{10000}", Resolve).status().code(),
            StatusCode::kInvalidArgument);
  // Nine digits pass ParseCount; the expansion cap must still reject.
  EXPECT_EQ(ParseRegex("a{999999999}", Resolve).status().code(),
            StatusCode::kInvalidArgument);
  // Nested repetitions multiply: each level is small, the product is
  // not. The parser builds a node-sharing AST, so without the
  // expanded-size cap this would parse "successfully" and then
  // exhaust memory in the first consumer that walks the expansion.
  EXPECT_EQ(ParseRegex("((a{64}){64}){64}", Resolve).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRegex("(((a{500}){500}){500}){500}", Resolve).status().code(),
            StatusCode::kInvalidArgument);
  // Sequential (additive) repetitions stay inside the cap.
  ASSERT_OK_AND_ASSIGN(Regex seq, ParseRegex("a{512}.a{512}", Resolve));
  EXPECT_TRUE(seq.IsStarFree());
  // Boundary: the cap applies to the expansion, which includes the
  // concat operators, so a{4096} overflows while a{2048} fits.
  EXPECT_FALSE(ParseRegex("a{4096}", Resolve).ok());
  EXPECT_OK(ParseRegex("a{2048}", Resolve).status());
  // And an open bound keeps working.
  ASSERT_OK_AND_ASSIGN(Regex open2, ParseRegex("a{2000,}", Resolve));
  EXPECT_FALSE(open2.IsStarFree());
}

TEST(RegexTest, RepetitionSemantics) {
  // The language of a{1,3} is exactly {a, aa, aaa}.
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("a{1,3}", Resolve));
  Dfa dfa = Dfa::Determinize(BuildNfa(r, 5));
  EXPECT_FALSE(dfa.Accepts({}));
  EXPECT_TRUE(dfa.Accepts({0}));
  EXPECT_TRUE(dfa.Accepts({0, 0}));
  EXPECT_TRUE(dfa.Accepts({0, 0, 0}));
  EXPECT_FALSE(dfa.Accepts({0, 0, 0, 0}));
  EXPECT_FALSE(dfa.Accepts({1}));
}

TEST(RegexTest, ToStringParenthesizesMinimal) {
  ASSERT_OK_AND_ASSIGN(Regex r, ParseRegex("(a|b).c", Resolve));
  EXPECT_EQ(r.ToString(NameOf), "(a|b).c");
  ASSERT_OK_AND_ASSIGN(Regex r2, ParseRegex("a|b.c", Resolve));
  EXPECT_EQ(r2.ToString(NameOf), "a|b.c");
  ASSERT_OK_AND_ASSIGN(Regex r3, ParseRegex("(a|b)*", Resolve));
  EXPECT_EQ(r3.ToString(NameOf), "(a|b)*");
}

}  // namespace
}  // namespace xmlverify
