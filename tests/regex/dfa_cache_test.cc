// The process-wide DFA memo behind CachedDeterminize: correctness of
// cached results, hit accounting, and alphabet-size key separation.
#include "regex/automaton.h"

#include <gtest/gtest.h>

#include <vector>

#include "regex/regex.h"

namespace xmlverify {
namespace {

Regex AStarB() {
  return Regex::Concat(Regex::Star(Regex::Symbol(0)), Regex::Symbol(1));
}

TEST(DfaCacheTest, CachedResultMatchesDirectDeterminization) {
  GlobalDfaCache().Clear();
  Dfa direct = Dfa::Determinize(BuildNfa(AStarB(), 2));
  Dfa cached = CachedDeterminize(AStarB(), 2);
  for (const std::vector<int>& word :
       std::vector<std::vector<int>>{{},
                                     {1},
                                     {0, 1},
                                     {0, 0, 0, 1},
                                     {1, 1},
                                     {0},
                                     {1, 0}}) {
    EXPECT_EQ(cached.Accepts(word), direct.Accepts(word));
  }
}

TEST(DfaCacheTest, RepeatLookupsHit) {
  GlobalDfaCache().Clear();
  const uint64_t hits_before = GlobalDfaCache().hits();
  CachedDeterminize(AStarB(), 2);
  CachedDeterminize(AStarB(), 2);
  CachedDeterminize(AStarB(), 2);
  EXPECT_GE(GlobalDfaCache().hits(), hits_before + 2);
}

TEST(DfaCacheTest, AlphabetSizeIsPartOfTheKey) {
  // The same expression over a larger alphabet is a different DFA
  // (more symbols lead to the reject sink); the key must keep the two
  // apart.
  GlobalDfaCache().Clear();
  Dfa narrow = CachedDeterminize(AStarB(), 2);
  Dfa wide = CachedDeterminize(AStarB(), 3);
  EXPECT_EQ(GlobalDfaCache().size(), 2u);
  EXPECT_FALSE(narrow.Accepts({2}));
  EXPECT_FALSE(wide.Accepts({2}));
  EXPECT_TRUE(wide.Accepts({0, 0, 1}));
}

TEST(DfaCacheTest, CanonicalTextUsesSymbolIds) {
  // The key is rendered from symbol ids, independent of any DTD's
  // type names: "#3" not "book".
  std::string text = AStarB().CanonicalText();
  EXPECT_NE(text.find("#0"), std::string::npos) << text;
  EXPECT_NE(text.find("#1"), std::string::npos) << text;
}

}  // namespace
}  // namespace xmlverify
