// Combined `.xvc` specification format.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(CombinedSpecTest, ParsesBothSections) {
  constexpr char kCombined[] = R"(
<!ELEMENT r (a+, b+)>
<!ATTLIST a v>
<!ATTLIST b v>
%%
a.v -> a
fk a.v <= b.v
)";
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::ParseCombined(kCombined));
  EXPECT_EQ(spec.dtd.num_element_types(), 3);
  EXPECT_EQ(spec.constraints.absolute_keys().size(), 2u);  // a.v + fk's b.v
  EXPECT_EQ(spec.constraints.absolute_inclusions().size(), 1u);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(CombinedSpecTest, EmptyConstraintSection) {
  ASSERT_OK_AND_ASSIGN(Specification spec, Specification::ParseCombined(
                                               "<!ELEMENT r (a*)>\n%%\n"));
  EXPECT_TRUE(spec.constraints.empty());
}

TEST(CombinedSpecTest, MissingSeparatorRejected) {
  EXPECT_FALSE(Specification::ParseCombined("<!ELEMENT r (a*)>\n").ok());
}

TEST(CombinedSpecTest, SeparatorMustBeAlone) {
  // '%%' embedded in a longer line is not a separator.
  EXPECT_FALSE(
      Specification::ParseCombined("<!ELEMENT r (a*)> %% a.v -> a").ok());
}

}  // namespace
}  // namespace xmlverify
