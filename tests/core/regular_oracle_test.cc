// Randomized cross-validation for REGULAR-path constraints — the
// checker with the most intricate encoding (z_theta cells plus the
// realizability and capacity refinements) gets the same ground-truth
// treatment as the absolute one: exhaustive bounded search.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/sat_regular.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Fixed two-branch DTD; random constraints over the path vocabulary
// {r.g1.x, r.g2.x, r._*.x} on the shared leaf type x.
Specification RandomRegularSpec(uint64_t seed) {
  uint64_t state = seed;
  // Branch shapes vary: mandatory or optional leaves. At most two
  // leaves per branch, so four attribute slots total — the bounded
  // search below is exhaustive with a four-value pool.
  const char* shapes[] = {"x", "x,x", "x,(x|%)", "(x|%)"};
  std::string g1 = shapes[NextRandom(&state) % 4];
  std::string g2 = shapes[NextRandom(&state) % 4];
  std::string dtd_text = "<!ELEMENT r (g1, g2)>\n<!ELEMENT g1 (" + g1 +
                         ")>\n<!ELEMENT g2 (" + g2 +
                         ")>\n<!ATTLIST x v>\n";
  const char* paths[] = {"r.g1.x", "r.g2.x", "r._*.x"};
  std::string constraints;
  int num_constraints = 1 + NextRandom(&state) % 3;
  for (int c = 0; c < num_constraints; ++c) {
    const char* p1 = paths[NextRandom(&state) % 3];
    const char* p2 = paths[NextRandom(&state) % 3];
    if (NextRandom(&state) % 2 == 0) {
      constraints += std::string(p1) + ".v -> " + p1 + "\n";
    } else {
      constraints +=
          std::string("fk ") + p1 + ".v <= " + p2 + ".v\n";
    }
  }
  return Specification::Parse(dtd_text, constraints).ValueOrDie();
}

class RegularOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegularOracleSweep, CheckerAgreesWithBoundedSearch) {
  Specification spec = RandomRegularSpec(GetParam());
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict checker,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  ASSERT_NE(checker.outcome, ConsistencyOutcome::kUnknown);

  BoundedSearchOptions bounds;
  bounds.max_nodes = 7;
  // As many values as attribute slots: any witness of a consistent
  // spec within the node bound can be renamed into this pool.
  bounds.num_values = 4;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict search,
      BoundedSearchConsistency(spec.dtd, spec.constraints, bounds));

  if (search.outcome == ConsistencyOutcome::kConsistent) {
    EXPECT_EQ(checker.outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  if (checker.outcome == ConsistencyOutcome::kInconsistent) {
    EXPECT_NE(search.outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  // These DTDs are tiny: every consistent spec has a witness within
  // the search bound, so the implications above are actually
  // equivalences — assert the strong direction too.
  if (checker.outcome == ConsistencyOutcome::kConsistent) {
    EXPECT_EQ(search.outcome, ConsistencyOutcome::kConsistent)
        << "checker says consistent but exhaustive search found nothing:\n"
        << spec.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegularOracleSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{60}));

}  // namespace
}  // namespace xmlverify
