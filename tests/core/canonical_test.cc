// The canonical serializer/fingerprint contract (core/canonical.h):
// canonical text is a parse -> serialize fixed point, so
// Fingerprint(Parse(Serialize(S))) == Fingerprint(S) for every
// specification — exercised over the generated difftest grid and the
// on-disk regression corpus, which between them cover every
// constraint class the generator can emit.
#include "core/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/specification.h"
#include "difftest/spec_generator.h"
#include "tests/test_util.h"

#ifndef DIFFTEST_CORPUS_DIR
#error "DIFFTEST_CORPUS_DIR must point at tests/difftest/corpus"
#endif

namespace xmlverify {
namespace {

TEST(CanonicalTest, FingerprintIsDeterministicAndSpreads) {
  EXPECT_EQ(FingerprintText("abc"), FingerprintText("abc"));
  EXPECT_EQ(FingerprintText("abc").size(), 32u);
  EXPECT_NE(FingerprintText("abc"), FingerprintText("abd"));
  EXPECT_NE(FingerprintText(""), FingerprintText(std::string("\0\0", 2)));
  // Hex only.
  EXPECT_EQ(FingerprintText("x").find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

TEST(CanonicalTest, FixedPointOnGeneratedGrid) {
  for (DifftestClass cls : AllDifftestClasses()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      SCOPED_TRACE(DifftestClassName(cls) + "/" + std::to_string(seed));
      ASSERT_OK_AND_ASSIGN(GeneratedSpec generated, GenerateSpec(seed, cls));
      const std::string canonical = CanonicalSpecText(generated.spec);
      EXPECT_EQ(canonical, generated.text);

      ASSERT_OK_AND_ASSIGN(Specification reparsed,
                           Specification::ParseCombined(canonical));
      EXPECT_EQ(CanonicalSpecText(reparsed), canonical);
      EXPECT_EQ(SpecFingerprint(reparsed), SpecFingerprint(generated.spec));
      EXPECT_EQ(SpecFingerprint(generated.spec), FingerprintText(canonical));
    }
  }
}

TEST(CanonicalTest, FixedPointOnDifftestCorpus) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DIFFTEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".xvc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::filesystem::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ASSERT_OK_AND_ASSIGN(Specification spec,
                         Specification::ParseCombined(buffer.str()));
    const std::string canonical = CanonicalSpecText(spec);
    ASSERT_OK_AND_ASSIGN(Specification reparsed,
                         Specification::ParseCombined(canonical));
    EXPECT_EQ(CanonicalSpecText(reparsed), canonical);
    EXPECT_EQ(SpecFingerprint(reparsed), SpecFingerprint(spec));
  }
}

TEST(CanonicalTest, SurfaceSyntaxCanonicalizesAway) {
  // Comments, blank lines, and whitespace differences disappear in
  // the canonical form, so the fingerprints coincide — the property
  // the serve-layer verdict cache keys on.
  ASSERT_OK_AND_ASSIGN(
      Specification plain,
      Specification::Parse(
          "<!ELEMENT r (a*)>\n<!ELEMENT a (%)>\n<!ATTLIST a x>\n",
          "r.a.x -> r.a\n"));
  ASSERT_OK_AND_ASSIGN(
      Specification decorated,
      Specification::Parse(
          "\n<!ELEMENT r (a*)>\n\n<!ELEMENT a (%)>\n<!ATTLIST a x>\n",
          "# a key on a.x\n\nr.a.x -> r.a\n"));
  EXPECT_EQ(SpecFingerprint(plain), SpecFingerprint(decorated));
  EXPECT_EQ(CanonicalSpecText(plain), CanonicalSpecText(decorated));
}

TEST(CanonicalTest, DistinctSpecsGetDistinctCanonicalText) {
  std::set<std::string> canonicals;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec generated,
                         GenerateSpec(seed, DifftestClass::kAcUnary));
    canonicals.insert(CanonicalSpecText(generated.spec));
  }
  // Generation is seeded and varied; expect near-total distinctness.
  EXPECT_GT(canonicals.size(), 20u);
}

}  // namespace
}  // namespace xmlverify
