// The worked examples of the paper, end to end.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/sat_hierarchical.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

// Section 1, Figure 1(a): the school document with regular-path
// constraints. Consistent as given; inconsistent once professors are
// required to hold dbLab accounts.
constexpr char kSchoolDtd[] = R"(
<!ELEMENT r (students, courses, faculty, labs)>
<!ELEMENT students (student+)>
<!ELEMENT courses (cs340, cs108, cs434)>
<!ELEMENT faculty (prof+)>
<!ELEMENT labs (dbLab, pcLab)>
<!ELEMENT student (record)>
<!ELEMENT prof (record)>
<!ELEMENT cs340 (takenBy+)>
<!ELEMENT cs108 (takenBy+)>
<!ELEMENT cs434 (takenBy+)>
<!ELEMENT dbLab (acc+)>
<!ELEMENT pcLab (acc+)>
<!ELEMENT record EMPTY>
<!ELEMENT takenBy EMPTY>
<!ELEMENT acc EMPTY>
<!ATTLIST record id>
<!ATTLIST takenBy sid>
<!ATTLIST acc num>
)";

constexpr char kSchoolConstraints[] = R"(
r._*.(student|prof).record.id -> r._*.(student|prof).record
r._*.cs434.takenBy.sid -> r._*.cs434.takenBy
fk r._*.cs434.takenBy.sid <= r._*.student.record.id
fk r._*.dbLab.acc.num <= r._*.cs434.takenBy.sid
)";

TEST(SchoolExample, OriginalSpecificationIsConsistent) {
  ASSERT_OK_AND_ASSIGN(
      Specification spec,
      Specification::Parse(kSchoolDtd, kSchoolConstraints));
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcRegular);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  ASSERT_TRUE(verdict.witness.has_value());
}

TEST(SchoolExample, FacultyAccountsMakeItInconsistent) {
  std::string constraints = kSchoolConstraints;
  // "All faculty members must have a dbLab account."
  constraints += "fk r.faculty.prof.record.id <= r._*.dbLab.acc.num\n";
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::Parse(kSchoolDtd, constraints));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent)
      << verdict.note;
}

// Section 1, Figure 1(b): countries, provinces and capitals with
// relative constraints. The specification looks reasonable and is
// inconsistent (the capital-counting argument).
constexpr char kGeoDtd[] = R"(
<!ELEMENT db (country+)>
<!ELEMENT country (province+, capital+)>
<!ELEMENT province (capital, city*)>
<!ELEMENT capital EMPTY>
<!ELEMENT city EMPTY>
<!ATTLIST country name>
<!ATTLIST province name>
<!ATTLIST capital inProvince>
)";

constexpr char kGeoConstraints[] = R"(
country.name -> country
country(province.name -> province)
country(capital.inProvince -> capital)
country(capital.inProvince <= province.name)
)";

TEST(GeographyExample, RelativeSpecificationIsInconsistent) {
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::Parse(kGeoDtd, kGeoConstraints));
  EXPECT_EQ(spec.Classify(), ConstraintClass::kMixedRelative);
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_TRUE(classification.hierarchical);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent)
      << verdict.note;
}

TEST(GeographyExample, DroppingTheCapitalKeyRestoresConsistency) {
  // Without the relative key on capital, capitals may share
  // inProvince values and the counting argument dissolves.
  constexpr char kWeaker[] = R"(
country.name -> country
country(province.name -> province)
country(capital.inProvince <= province.name)
)";
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::Parse(kGeoDtd, kWeaker));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  ASSERT_TRUE(verdict.witness.has_value());
}

// Section 4.2, Figure 2: the library catalog. Variant (a) is
// hierarchical; variant (b) adds a cross-scope author registry and is
// not.
constexpr char kLibraryDtd[] = R"(
<!ELEMENT library (book+)>
<!ELEMENT book (author+, chapter+)>
<!ELEMENT chapter (section*)>
<!ELEMENT author EMPTY>
<!ELEMENT section EMPTY>
<!ATTLIST book isbn>
<!ATTLIST author name>
<!ATTLIST chapter number>
<!ATTLIST section title>
)";

constexpr char kLibraryConstraints[] = R"(
library(book.isbn -> book)
book(author.name -> author)
book(chapter.number -> chapter)
chapter(section.title -> section)
)";

TEST(LibraryExample, HierarchicalAndConsistent) {
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::Parse(kLibraryDtd, kLibraryConstraints));
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_TRUE(classification.hierarchical);
  EXPECT_LE(classification.locality, 2);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
}

constexpr char kLibraryRegistryDtd[] = R"(
<!ELEMENT library (book+, author_info+)>
<!ELEMENT book (author+, chapter+)>
<!ELEMENT chapter (section*)>
<!ELEMENT author EMPTY>
<!ELEMENT author_info EMPTY>
<!ELEMENT section EMPTY>
<!ATTLIST book isbn>
<!ATTLIST author name>
<!ATTLIST author_info name>
<!ATTLIST chapter number>
<!ATTLIST section title>
)";

TEST(LibraryExample, AuthorRegistryBreaksHierarchy) {
  std::string constraints = kLibraryConstraints;
  constraints += "library(author_info.name -> author_info)\n";
  constraints += "library(author.name <= author_info.name)\n";
  ASSERT_OK_AND_ASSIGN(
      Specification spec,
      Specification::Parse(kLibraryRegistryDtd, constraints));
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_FALSE(classification.hierarchical);
  EXPECT_NE(classification.conflict.find("book"), std::string::npos);
  // The facade falls back to bounded search and can still find a
  // witness (the registry variant is satisfiable).
  ConsistencyChecker::Options options;
  options.bounded.max_nodes = 7;
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
}

}  // namespace
}  // namespace xmlverify
