// Impl(C) tests, including the Proposition 3.6 reduction.
#include "core/implication.h"

#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "core/consistency.h"
#include "core/specification.h"
#include "reductions/cnf.h"
#include "reductions/cnf_depth2.h"
#include "reductions/impl_reduction.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

constexpr char kChainDtd[] = R"(
<!ELEMENT r (a+, b+, c+)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)";

TEST(ImplicationTest, InclusionTransitivity) {
  Specification spec = Parse(kChainDtd, R"(
a.v <= b.v
b.v <= c.v
)");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  // a.v <= c.v is implied.
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict implied,
      CheckInclusionImplication(spec.dtd, spec.constraints,
                                AbsoluteInclusion{a, {"v"}, c, {"v"}}));
  EXPECT_TRUE(implied.implied);
  // c.v <= a.v is not.
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict reverse,
      CheckInclusionImplication(spec.dtd, spec.constraints,
                                AbsoluteInclusion{c, {"v"}, a, {"v"}}));
  EXPECT_FALSE(reverse.implied);
  ASSERT_TRUE(reverse.counterexample.has_value());
  // The counterexample satisfies Sigma but violates phi.
  EXPECT_OK(CheckConstraints(*reverse.counterexample, spec.dtd,
                             spec.constraints));
  ConstraintSet phi;
  phi.Add(AbsoluteInclusion{c, {"v"}, a, {"v"}});
  EXPECT_FALSE(
      CheckConstraints(*reverse.counterexample, spec.dtd, phi).ok());
}

TEST(ImplicationTest, KeyNotImpliedWithoutReason) {
  Specification spec = Parse(kChainDtd, "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  ASSERT_OK_AND_ASSIGN(ImplicationVerdict verdict,
                       CheckKeyImplication(spec.dtd, spec.constraints,
                                           AbsoluteKey{b, {"v"}}));
  EXPECT_FALSE(verdict.implied);
  ASSERT_TRUE(verdict.counterexample.has_value());
}

TEST(ImplicationTest, KeyImpliedByCardinalitysqueeze) {
  // b's values sit inside a single a's value (|ext(a)| = 1 via DTD
  // a exactly once), and b is alone too: any singleton extent
  // satisfies every key, so the key on b is implied.
  Specification spec = Parse(R"(
<!ELEMENT r (a, b)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                             "");
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  ASSERT_OK_AND_ASSIGN(ImplicationVerdict verdict,
                       CheckKeyImplication(spec.dtd, spec.constraints,
                                           AbsoluteKey{b, {"v"}}));
  EXPECT_TRUE(verdict.implied);
}

TEST(ImplicationTest, SelfInclusionAlwaysImplied) {
  Specification spec = Parse(kChainDtd, "");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict verdict,
      CheckInclusionImplication(spec.dtd, spec.constraints,
                                AbsoluteInclusion{a, {"v"}, a, {"v"}}));
  EXPECT_TRUE(verdict.implied);
}

TEST(ImplicationTest, RegularPathImplication) {
  Specification spec = Parse(R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item+)>
<!ELEMENT right (item+)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)",
                             "r._*.item.id -> r._*.item\n");
  // The global key implies the key restricted to the left branch.
  auto resolve = [&spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  ASSERT_OK_AND_ASSIGN(Regex left_path,
                       ParseRegex("r.left.item", resolve));
  ASSERT_OK_AND_ASSIGN(int item, spec.dtd.TypeId("item"));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict verdict,
      CheckKeyImplication(spec.dtd, spec.constraints,
                          RegularKey{left_path, item, "id"}));
  EXPECT_TRUE(verdict.implied);

  // The converse does not hold.
  Specification weaker = Parse(R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item+)>
<!ELEMENT right (item+)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)",
                               "r.left.item.id -> r.left.item\n");
  ASSERT_OK_AND_ASSIGN(Regex global_path,
                       ParseRegex("r._*.item", resolve));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict converse,
      CheckKeyImplication(weaker.dtd, weaker.constraints,
                          RegularKey{global_path, item, "id"}));
  EXPECT_FALSE(converse.implied);
}

// Proposition 3.6: the original specification is consistent iff the
// reduced implication instance does NOT imply phi.
class Prop36Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop36Sweep, SatIffNotImplied) {
  CnfFormula formula = CnfFormula::Random(3, 5, 2, GetParam());
  ASSERT_OK_AND_ASSIGN(Specification spec, CnfToDepth2Spec(formula));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict direct, checker.Check(spec));

  ASSERT_OK_AND_ASSIGN(ImplicationInstance instance, SatToImplication(spec));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict implication,
      CheckKeyImplication(instance.spec.dtd, instance.spec.constraints,
                          instance.phi));
  EXPECT_EQ(direct.outcome == ConsistencyOutcome::kConsistent,
            !implication.implied)
      << formula.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop36Sweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace xmlverify
