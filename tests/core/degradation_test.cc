// The graceful-degradation ladder: exact stage exhausts -> one
// explicitly smaller bounded retry -> sound recovery or a structured
// partial diagnosis. See docs/robustness.md.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

// A consistent keys-only specification whose exact path runs through
// the ILP solver.
Specification TinyConsistentSpec() {
  return Parse("<!ELEMENT r (a+)>\n<!ATTLIST a v>", "a.v -> a\n");
}

TEST(DegradationTest, SolverGiveUpRecoversThroughDegradedBoundedSearch) {
  ConsistencyChecker::Options options;
  // Force the exact stage to give up instantly: zero branch-and-bound
  // nodes means "node limit reached" before any work.
  options.solver.max_nodes = 0;
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       checker.Check(TinyConsistentSpec()));
  // The degraded bounded search finds a real witness, so the recovery
  // is a sound kConsistent — with the ladder recorded.
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  ASSERT_FALSE(verdict.degradation.empty());
  EXPECT_EQ(verdict.degradation[0].stage, "exact");
  EXPECT_NE(verdict.note.find("degraded"), std::string::npos);
}

TEST(DegradationTest, MemoryExhaustionEndsInResourceExhaustedNotAVerdict) {
  ConsistencyChecker::Options options;
  // A budget too small for even one simplex tableau: the exact stage
  // and the degraded rung both run out.
  options.budget.set_memory_limit_bytes(50);
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       checker.Check(TinyConsistentSpec()));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kResourceExhausted);
  // Exhaustion is never mistaken for a definitive answer.
  EXPECT_NE(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_NE(verdict.outcome, ConsistencyOutcome::kInconsistent);
  ASSERT_FALSE(verdict.degradation.empty());
  EXPECT_NE(verdict.note.find("degradation ladder"), std::string::npos);
}

TEST(DegradationTest, LadderCanBeDisabled) {
  ConsistencyChecker::Options options;
  options.budget.set_memory_limit_bytes(50);
  options.degrade_on_exhaustion = false;
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       checker.Check(TinyConsistentSpec()));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kResourceExhausted);
  EXPECT_TRUE(verdict.degradation.empty());
}

TEST(DegradationTest, DeadlineExpiryIsNotARung) {
  ConsistencyChecker::Options options;
  // The clock that killed the exact stage would kill the fallback
  // too, so deadline expiry must not enter the ladder.
  options.deadline = Deadline::AfterMillis(0);
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       checker.Check(TinyConsistentSpec()));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kDeadlineExceeded);
  EXPECT_TRUE(verdict.degradation.empty());
}

TEST(DegradationTest, AlreadyBoundedStagesDoNotReDegrade) {
  // kAcMultiGeneral is undecidable: the checker goes straight to
  // bounded search, which is not an "exact" rung — an inconclusive
  // result there must not loop back into the ladder.
  Specification spec = Parse(
      "<!ELEMENT r (p, q)>\n<!ATTLIST p a b>\n<!ATTLIST q c d>\n",
      "p[a,b] <= q[c,d]\n");
  ConsistencyChecker::Options options;
  options.bounded.max_nodes = 1;  // root only: no witness possible
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kUnknown);
  EXPECT_TRUE(verdict.degradation.empty());
}

TEST(DegradationTest, GenerousBudgetLeavesExactVerdictsUntouched) {
  ConsistencyChecker::Options options;
  options.budget.set_memory_limit_bytes(int64_t{256} * 1024 * 1024);
  options.budget.set_max_depth(500);
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       checker.Check(TinyConsistentSpec()));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_TRUE(verdict.degradation.empty());
}

TEST(DegradationTest, InconsistentSpecStaysInconsistentUnderALadder) {
  // The paper's key/foreign-key clash: two b's with keyed w must both
  // reference the single a's v — impossible. The exact stage proves
  // it; the armed ladder must not soften the verdict.
  Specification spec = Parse(
      "<!ELEMENT r (a, b, b)>\n<!ATTLIST a v>\n<!ATTLIST b w>",
      "b.w -> b\nfk b.w <= a.v\n");
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
  EXPECT_TRUE(verdict.degradation.empty());
}

}  // namespace
}  // namespace xmlverify
