// Theorem 3.5 fragment checker and the undecidable-fragment bounded
// search, including the Theorem 4.1 generator.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/consistency.h"
#include "core/sat_bounded.h"
#include "core/specification.h"
#include "reductions/diophantine_relative.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

TEST(NoStarCheckerTest, RequiresItsFragment) {
  Specification starred = Parse("<!ELEMENT r (a*)>\n<!ATTLIST a v>\n",
                                "a.v -> a\n");
  EXPECT_FALSE(CheckNoStarConsistency(starred.dtd, starred.constraints).ok());

  Specification recursive = Parse(
      "<!ELEMENT r (n)>\n<!ELEMENT n (n|%)>\n<!ATTLIST n v>\n", "n.v -> n\n");
  EXPECT_FALSE(
      CheckNoStarConsistency(recursive.dtd, recursive.constraints).ok());

  Specification multi = Parse("<!ELEMENT r (a)>\n<!ATTLIST a v w>\n",
                              "a[v,w] -> a\n");
  EXPECT_FALSE(CheckNoStarConsistency(multi.dtd, multi.constraints).ok());
}

TEST(NoStarCheckerTest, DecidesSimpleCases) {
  // Inconsistent: two a's must each match the single b's value, but
  // a.v is a key.
  Specification bad = Parse(R"(
<!ELEMENT r (a, a, b)>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                            "a.v -> a\nfk a.v <= b.v\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckNoStarConsistency(bad.dtd, bad.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);

  // Consistent variant with a choice in the DTD.
  Specification good = Parse(R"(
<!ELEMENT r ((a|b), b)>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                             "a.v -> a\nfk a.v <= b.v\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict2,
                       CheckNoStarConsistency(good.dtd, good.constraints));
  EXPECT_EQ(verdict2.outcome, ConsistencyOutcome::kConsistent);
}

TEST(NoStarCheckerTest, ChainedInclusionsPropagate) {
  Specification spec = Parse(R"(
<!ELEMENT r (a, a, b, c)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)",
                             R"(
a.v -> a
fk a.v <= b.v
fk b.v <= c.v
)");
  // Two distinct a-values need two b-values need two c-values, but
  // there is only one c element.
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckNoStarConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(DiophantineTest, ImbalanceAndBoundedSearch) {
  // 2x0 = x1 + 1.
  QuadraticEquation equation;
  equation.num_variables = 2;
  equation.lhs_linear.push_back({2, 0});
  equation.rhs_linear.push_back({1, 1});
  equation.constant = 1;
  EXPECT_TRUE(equation.HasSolutionUpTo(3));  // x0=1, x1=1
  EXPECT_EQ(equation.Imbalance({1, 1}), 0);
  EXPECT_NE(equation.Imbalance({0, 0}), 0);

  // x0 * x1 = 2 has solutions; x0 * x1 = 0 with constant 1 does not
  // when the lhs monomial is forced positive... keep to the linear
  // sanity case here.
}

TEST(DiophantineTest, LinearEquationSpecMatchesSolvability) {
  // a*x = o: solvable iff a divides o.
  for (int64_t a = 1; a <= 3; ++a) {
    for (int64_t o = 1; o <= 4; ++o) {
      QuadraticEquation equation;
      equation.num_variables = 1;
      equation.lhs_linear.push_back({a, 0});
      equation.constant = o;
      ASSERT_OK_AND_ASSIGN(Specification spec,
                           QuadraticEquationToRelativeSpec(equation));
      // Linear-only equations produce absolute constraints, decidable
      // exactly.
      EXPECT_FALSE(spec.constraints.HasRelative());
      ConsistencyChecker checker;
      ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
      bool solvable = o % a == 0;
      EXPECT_EQ(verdict.outcome, solvable
                                     ? ConsistencyOutcome::kConsistent
                                     : ConsistencyOutcome::kInconsistent)
          << a << " * x = " << o;
    }
  }
}

TEST(DiophantineTest, QuadraticSpecIsOutsideHrc) {
  // x0 * x1 (quadratic term) forces the recursive alpha gadget and
  // relative constraints; the facade falls back to bounded search.
  QuadraticEquation equation;
  equation.num_variables = 2;
  equation.lhs_quadratic.push_back({1, 0, 1});
  equation.constant = 1;
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       QuadraticEquationToRelativeSpec(equation));
  EXPECT_TRUE(spec.constraints.HasRelative());
  EXPECT_TRUE(spec.dtd.IsRecursive());
}

}  // namespace
}  // namespace xmlverify
