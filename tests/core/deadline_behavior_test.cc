// Deadline behavior across the decision procedures, plus the
// cap-soundness regressions: a capped search must report kUnknown,
// never a definitive verdict, and an expired deadline must yield
// kDeadlineExceeded — not a hang, a crash, or a wrong answer.
#include <gtest/gtest.h>

#include <chrono>

#include "core/brute_force.h"
#include "core/consistency.h"
#include "core/sat_bounded.h"
#include "core/specification.h"
#include "ilp/solver.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

TEST(DeadlineBehaviorTest, BoundedSearchHonorsDeadlineWithinTolerance) {
  // A starred DTD with three values and a 14-node budget spans far too
  // many candidate trees to enumerate quickly; the never-satisfied
  // predicate forces the search to run until some budget intervenes.
  Specification spec = Parse("<!ELEMENT r (a*)>\n<!ATTLIST a v>\n", "");
  BoundedSearchOptions options;
  options.max_nodes = 14;
  options.num_values = 3;
  options.max_candidates = 1'000'000'000'000;
  options.deadline = Deadline::AfterMillis(150);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      BoundedSearchDocument(
          spec.dtd, [](const XmlTree&) { return false; }, options));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kDeadlineExceeded);
  // Generous tolerance for loaded CI machines; without the deadline
  // this enumeration runs for minutes.
  EXPECT_LT(elapsed.count(), 10000) << "deadline overshot";
}

TEST(DeadlineBehaviorTest, CheckerFoldsExpiredDeadlineIntoVerdict) {
  // An already-expired deadline: every procedure must notice before
  // doing real work, and the facade reports it as a verdict (never as
  // an error status).
  ConsistencyChecker::Options options;
  options.deadline = Deadline::AfterMillis(0);
  ConsistencyChecker checker(options);

  // Absolute class (ILP route).
  Specification absolute =
      Parse("<!ELEMENT r (a*)>\n<!ATTLIST a v>\n", "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(absolute));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kDeadlineExceeded);

  // Hierarchical relative class (scope recursion route).
  Specification relative = Parse(R"(
<!ELEMENT r (c*)>
<!ELEMENT c (a*)>
<!ATTLIST a v>
)",
                                 "c(a.v -> a)\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict relative_verdict,
                       checker.Check(relative));
  EXPECT_EQ(relative_verdict.outcome, ConsistencyOutcome::kDeadlineExceeded);
}

TEST(DeadlineBehaviorTest, InfiniteDeadlineLeavesVerdictsExact) {
  ConsistencyChecker checker;  // default options: no deadline
  Specification spec =
      Parse("<!ELEMENT r (a*)>\n<!ATTLIST a v>\n", "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(DeadlineBehaviorTest, SolverReportsDeadlineBeforeInterpretingLp) {
  // An infeasible program under an expired deadline must say
  // "deadline", not "unsat": the aborted LP's feasible flag is
  // meaningless and must not be read as a refutation.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr ge;
  ge.Add(x, BigInt(1));
  program.AddLinear(std::move(ge), Relation::kGe, BigInt(5));
  program.SetUpperBound(x, BigInt(2));
  SolverOptions options;
  options.deadline = Deadline::AfterMillis(0);
  SolveResult result = IlpSolver(options).Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kDeadlineExceeded);
}

TEST(CapSoundnessTest, NoStarVectorCapReportsUnknownNotInconsistent) {
  // Genuinely inconsistent: either branch yields >= 2 a's keyed into a
  // single b. The union makes the achievable-vector set {(2,1),(3,1)},
  // which overflows a cap of 1 — and a truncated DP has not examined
  // every extent vector, so claiming kInconsistent would be unsound.
  Specification spec = Parse(R"(
<!ELEMENT r ((a, a, b) | (a, a, a, b))>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                             "a.v -> a\nfk a.v <= b.v\n");
  NoStarCheckOptions options;
  options.max_vectors = 1;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckNoStarConsistency(spec.dtd, spec.constraints, options));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kUnknown);
  EXPECT_NE(verdict.note.find("vector"), std::string::npos) << verdict.note;
}

TEST(CapSoundnessTest, SolverNodeCapReportsUnknownNotUnsat) {
  // Infeasible program, but the node budget expires before the search
  // can prove it: kUnknown, never kUnsat.
  IntegerProgram program;
  VarId x = program.NewVariable("x");
  LinearExpr ge;
  ge.Add(x, BigInt(1));
  program.AddLinear(std::move(ge), Relation::kGe, BigInt(5));
  program.SetUpperBound(x, BigInt(2));
  SolverOptions options;
  options.max_nodes = 0;
  SolveResult result = IlpSolver(options).Solve(program);
  EXPECT_EQ(result.outcome, SolveOutcome::kUnknown);
}

TEST(CapSoundnessTest, BoundedSearchCandidateCapNeverClaimsInconsistent) {
  // One candidate is nowhere near enough to exhaust the space, so the
  // only honest answers are kConsistent (found early) or kUnknown.
  Specification spec = Parse("<!ELEMENT r (a, a)>\n<!ATTLIST a v>\n", "");
  BoundedSearchOptions options;
  options.max_candidates = 1;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      BoundedSearchDocument(
          spec.dtd, [](const XmlTree&) { return false; }, options));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kUnknown);
}

}  // namespace
}  // namespace xmlverify
