// Randomized cross-validation: on small specifications, the counting
// checkers must agree with exhaustive bounded search (the semantic
// ground truth). SAT within the search bound implies the checker says
// consistent; checker-inconsistent implies the search finds nothing.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/sat_absolute.h"
#include "core/sat_bounded.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// A random small no-star DTD over types r, t0..t3 with attribute v,
// and random unary keys / foreign keys.
Specification RandomSpec(uint64_t seed) {
  uint64_t state = seed;
  const int num_types = 4;
  std::string dtd_text = "<!ELEMENT r (";
  // Root content: 2-3 child groups, each "ti" or "(ti|tj)" or "ti?".
  int groups = 2 + NextRandom(&state) % 2;
  for (int g = 0; g < groups; ++g) {
    if (g > 0) dtd_text += ",";
    int t1 = NextRandom(&state) % num_types;
    switch (NextRandom(&state) % 3) {
      case 0:
        dtd_text += "t" + std::to_string(t1);
        break;
      case 1: {
        int t2 = NextRandom(&state) % num_types;
        dtd_text += "(t" + std::to_string(t1) + "|t" + std::to_string(t2) +
                    ")";
        break;
      }
      default:
        dtd_text += "(t" + std::to_string(t1) + "|%)";
        break;
    }
  }
  dtd_text += ")>\n";
  for (int t = 0; t < num_types; ++t) {
    dtd_text += "<!ATTLIST t" + std::to_string(t) + " v>\n";
  }

  std::string constraints;
  int num_constraints = 1 + NextRandom(&state) % 3;
  for (int c = 0; c < num_constraints; ++c) {
    int t1 = NextRandom(&state) % num_types;
    int t2 = NextRandom(&state) % num_types;
    if (NextRandom(&state) % 2 == 0) {
      constraints += "t" + std::to_string(t1) + ".v -> t" +
                     std::to_string(t1) + "\n";
    } else {
      constraints += "fk t" + std::to_string(t1) + ".v <= t" +
                     std::to_string(t2) + ".v\n";
    }
  }
  // Referenced-but-absent types would be disconnected; ATTLIST on an
  // undeclared type interns it, so make every type reachable.
  std::string reachable = "<!ELEMENT rext (t0?, t1?, t2?, t3?)>\n";
  dtd_text = "<!ELEMENT top (r, rext)>\nroot top\n" +
             dtd_text + reachable;
  return Specification::Parse(dtd_text, constraints).ValueOrDie();
}

class OracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSweep, CheckerAgreesWithBoundedSearch) {
  Specification spec = RandomSpec(GetParam());
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict checker,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  ASSERT_NE(checker.outcome, ConsistencyOutcome::kUnknown);

  BoundedSearchOptions bounds;
  bounds.max_nodes = 7;
  bounds.num_values = 2;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict search,
      BoundedSearchConsistency(spec.dtd, spec.constraints, bounds));

  if (search.outcome == ConsistencyOutcome::kConsistent) {
    EXPECT_EQ(checker.outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  if (checker.outcome == ConsistencyOutcome::kInconsistent) {
    EXPECT_NE(search.outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  // And the no-star specialized checker agrees exactly (these DTDs
  // are no-star and non-recursive).
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict no_star,
                       CheckNoStarConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(no_star.outcome, checker.outcome) << spec.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{40}));

TEST(BoundedSearchTest, FindsWitnessForSimpleSpec) {
  Specification spec =
      Specification::Parse(
          "<!ELEMENT r (a, b)>\n<!ATTLIST a v>\n<!ATTLIST b v>\n",
          "fk a.v <= b.v\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       BoundedSearchConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  ASSERT_TRUE(verdict.witness.has_value());
}

TEST(BoundedSearchTest, ReportsUnknownWhenNothingFound) {
  // Key forces two distinct values but only one value is available.
  Specification spec =
      Specification::Parse("<!ELEMENT r (a, a)>\n<!ATTLIST a v>\n",
                           "a.v -> a\n")
          .ValueOrDie();
  BoundedSearchOptions bounds;
  bounds.num_values = 1;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      BoundedSearchConsistency(spec.dtd, spec.constraints, bounds));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kUnknown);
}

}  // namespace
}  // namespace xmlverify
