// Property sweep: the polynomial absolute-implication fast path and
// the general regular-path machinery must agree verdict-for-verdict
// on small absolute specifications.
#include <gtest/gtest.h>

#include "core/implication.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// The general machinery, forced: express phi over r._*.tau paths so
// CheckKeyImplication's absolute fast path is bypassed.
Result<ImplicationVerdict> ViaRegularMachinery(const Specification& spec,
                                               const AbsoluteKey* key,
                                               const AbsoluteInclusion* inc) {
  auto path_of = [&spec](int type) {
    return Regex::Concat(
        Regex::Concat(Regex::Symbol(spec.dtd.root()),
                      Regex::Star(Regex::Wildcard())),
        Regex::Symbol(type));
  };
  if (key != nullptr) {
    return CheckKeyImplication(
        spec.dtd, spec.constraints,
        RegularKey{path_of(key->type), key->type, key->attributes[0]});
  }
  return CheckInclusionImplication(
      spec.dtd, spec.constraints,
      RegularInclusion{path_of(inc->child_type), inc->child_type,
                       inc->child_attributes[0], path_of(inc->parent_type),
                       inc->parent_type, inc->parent_attributes[0]});
}

class ImplicationAgreementSweep : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ImplicationAgreementSweep, FastPathMatchesGeneralMachinery) {
  uint64_t state = GetParam();
  const int num_types = 3;
  // Small random DTD and unary constraint set (as in the oracle
  // sweep, but smaller so the regular machinery stays fast).
  std::string dtd_text = "<!ELEMENT r (";
  int groups = 2 + NextRandom(&state) % 2;
  for (int g = 0; g < groups; ++g) {
    if (g > 0) dtd_text += ",";
    int t = NextRandom(&state) % num_types;
    if (NextRandom(&state) % 2 == 0) {
      dtd_text += "t" + std::to_string(t);
    } else {
      dtd_text += "(t" + std::to_string(t) + "|%)";
    }
  }
  dtd_text += ",(t0|%),(t1|%),(t2|%))>\n";
  for (int t = 0; t < num_types; ++t) {
    dtd_text += "<!ATTLIST t" + std::to_string(t) + " v>\n";
  }
  std::string constraints;
  int num_constraints = NextRandom(&state) % 3;
  for (int c = 0; c < num_constraints; ++c) {
    int t1 = NextRandom(&state) % num_types;
    int t2 = NextRandom(&state) % num_types;
    if (NextRandom(&state) % 2 == 0) {
      constraints += "t" + std::to_string(t1) + ".v -> t" +
                     std::to_string(t1) + "\n";
    } else {
      constraints += "fk t" + std::to_string(t1) + ".v <= t" +
                     std::to_string(t2) + ".v\n";
    }
  }
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       Specification::Parse(dtd_text, constraints));

  // Random phi: a key or an inclusion.
  int pt1 = NextRandom(&state) % num_types;
  int pt2 = NextRandom(&state) % num_types;
  ASSERT_OK_AND_ASSIGN(int type1, spec.dtd.TypeId("t" + std::to_string(pt1)));
  ASSERT_OK_AND_ASSIGN(int type2, spec.dtd.TypeId("t" + std::to_string(pt2)));
  if (NextRandom(&state) % 2 == 0) {
    AbsoluteKey phi{type1, {"v"}};
    ASSERT_OK_AND_ASSIGN(ImplicationVerdict fast,
                         CheckKeyImplication(spec.dtd, spec.constraints, phi));
    ASSERT_OK_AND_ASSIGN(ImplicationVerdict general,
                         ViaRegularMachinery(spec, &phi, nullptr));
    EXPECT_EQ(fast.implied, general.implied)
        << spec.ToString() << "phi: " << phi.ToString(spec.dtd);
  } else {
    AbsoluteInclusion phi{type1, {"v"}, type2, {"v"}};
    ASSERT_OK_AND_ASSIGN(
        ImplicationVerdict fast,
        CheckInclusionImplication(spec.dtd, spec.constraints, phi));
    ASSERT_OK_AND_ASSIGN(ImplicationVerdict general,
                         ViaRegularMachinery(spec, nullptr, &phi));
    EXPECT_EQ(fast.implied, general.implied)
        << spec.ToString() << "phi: " << phi.ToString(spec.dtd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationAgreementSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

}  // namespace
}  // namespace xmlverify
