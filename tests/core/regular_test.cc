// SAT(AC^{reg}) checker tests beyond the school example.
#include "core/sat_regular.h"

#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "core/sat_absolute.h"
#include "core/specification.h"
#include "encoding/regular_encoder.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

constexpr char kTwoBranchDtd[] = R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item+)>
<!ELEMENT right (item+)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)";

TEST(RegularTest, PathScopedKeyIsWeakerThanGlobalKey) {
  // A key on left items only: right items may share ids freely.
  Specification spec = Parse(kTwoBranchDtd, R"(
r.left.item.id -> r.left.item
fk r.right.item.id <= r.left.item.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(RegularTest, DisjointBranchesUnderGlobalKeyCannotShareValues) {
  // Global key on all items + inclusion of left ids into right ids:
  // a left item's id would need to equal a right item's id, but the
  // global key makes all item ids distinct. So left must be empty —
  // impossible (item+).
  Specification spec = Parse(kTwoBranchDtd, R"(
r._*.item.id -> r._*.item
fk r.left.item.id <= r.right.item.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent)
      << verdict.note;
}

TEST(RegularTest, WithoutGlobalKeySharingIsFine) {
  Specification spec = Parse(kTwoBranchDtd, R"(
fk r.left.item.id <= r.right.item.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(RegularTest, InclusionIntoEmptyNodeSetForbidsChild) {
  // nodes(r.left.left) is empty, so an inclusion into it forces the
  // child side to be empty; left has item+ so its items always exist.
  Specification spec = Parse(kTwoBranchDtd, R"(
fk r.left.item.id <= r.right.item.id
fk r._*.item.id <= r.left.item.id
)");
  // Fine: nodes sets are nonempty. Now the genuinely empty target:
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict sanity,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(sanity.outcome, ConsistencyOutcome::kConsistent);

  Specification empty_target = Parse(R"(
<!ELEMENT r (a, b*)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ATTLIST a id>
<!ATTLIST b id>
)",
                                     R"(
fk r.a.id <= r.b.b.id
)");
  // nodes(r.b.b) = {} since b has no b children: a.id has nowhere to
  // point, and a is mandatory.
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckRegularConsistency(empty_target.dtd, empty_target.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(RegularTest, MixedAbsoluteAndRegularConstraints) {
  Specification spec = Parse(kTwoBranchDtd, R"(
item.id -> item
fk r.left.item.id <= r.right.item.id
)");
  // The absolute key folds to r._*.item and clashes exactly like the
  // global-key test.
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(RegularTest, KleeneDepthPaths) {
  // Recursive DTD with a path constraint through _*.
  Specification spec = Parse(R"(
<!ELEMENT r (sect)>
<!ELEMENT sect (sect*, para)>
<!ELEMENT para EMPTY>
<!ATTLIST para anchor>
)",
                             R"(
r._*.sect.para.anchor -> r._*.sect.para
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckRegularConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(RegularTest, ExpressionCapIsEnforced) {
  Specification spec = Parse(kTwoBranchDtd, R"(
r.left.item.id -> r.left.item
fk r.right.item.id <= r.left.item.id
)");
  RegularCheckOptions options;
  options.max_expressions = 1;
  Result<ConsistencyVerdict> verdict =
      CheckRegularConsistency(spec.dtd, spec.constraints, options);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kResourceExhausted);
}

TEST(RegularTest, AgreesWithAbsoluteCheckerOnAbsoluteSpecs) {
  // Purely absolute specifications can run through either pipeline;
  // verdicts must agree.
  struct Case {
    const char* dtd;
    const char* constraints;
  };
  const Case cases[] = {
      {kTwoBranchDtd, "item.id -> item\n"},
      {"<!ELEMENT r (a, a, b)>\n<!ATTLIST a ref>\n<!ATTLIST b id>\n",
       "a.ref -> a\nfk a.ref <= b.id\n"},
      {"<!ELEMENT r (a, a, b*)>\n<!ATTLIST a ref>\n<!ATTLIST b id>\n",
       "a.ref -> a\nfk a.ref <= b.id\n"},
  };
  for (const Case& c : cases) {
    Specification spec = Parse(c.dtd, c.constraints);
    ASSERT_OK_AND_ASSIGN(ConsistencyVerdict absolute,
                         CheckAbsoluteConsistency(spec.dtd, spec.constraints));
    ASSERT_OK_AND_ASSIGN(ConsistencyVerdict regular,
                         CheckRegularConsistency(spec.dtd, spec.constraints));
    EXPECT_EQ(absolute.outcome, regular.outcome) << c.constraints;
  }
}

}  // namespace
}  // namespace xmlverify
