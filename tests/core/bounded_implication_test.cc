// Bounded refutation search for implication outside the decidable
// fragments (relative premises, Corollary 4.5).
#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "core/implication.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(BoundedImplicationTest, RefutesWithRelativePremises) {
  // Sigma: per-order line keys. phi: a GLOBAL line key — refuted by a
  // document with the same sku in two different orders.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT shop (order, order)>
<!ELEMENT order (line+)>
<!ATTLIST line sku>
)",
                           "order(line.sku -> line)\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(int line, spec.dtd.TypeId("line"));
  ConstraintSet phi;
  phi.Add(AbsoluteKey{line, {"sku"}});
  BoundedSearchOptions bounds;
  bounds.max_nodes = 6;
  ASSERT_OK_AND_ASSIGN(
      BoundedRefutation refutation,
      SearchImplicationCounterexample(spec.dtd, spec.constraints, phi,
                                      bounds));
  ASSERT_TRUE(refutation.refuted);
  ASSERT_TRUE(refutation.counterexample.has_value());
  EXPECT_OK(CheckConstraints(*refutation.counterexample, spec.dtd,
                             spec.constraints));
  EXPECT_FALSE(
      CheckConstraints(*refutation.counterexample, spec.dtd, phi).ok());
}

TEST(BoundedImplicationTest, CannotRefuteActualImplication) {
  // Global key implies per-order keys; no counterexample exists.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT shop (order, order)>
<!ELEMENT order (line+)>
<!ATTLIST line sku>
)",
                           "line.sku -> line\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(int order, spec.dtd.TypeId("order"));
  ASSERT_OK_AND_ASSIGN(int line, spec.dtd.TypeId("line"));
  ConstraintSet phi;
  phi.Add(RelativeKey{order, line, "sku"});
  BoundedSearchOptions bounds;
  bounds.max_nodes = 6;
  ASSERT_OK_AND_ASSIGN(
      BoundedRefutation refutation,
      SearchImplicationCounterexample(spec.dtd, spec.constraints, phi,
                                      bounds));
  EXPECT_FALSE(refutation.refuted);
  EXPECT_GT(refutation.candidates_examined, 0);
}

}  // namespace
}  // namespace xmlverify
