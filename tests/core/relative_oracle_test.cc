// Randomized cross-validation for RELATIVE constraints: hierarchical
// verdicts against exhaustive bounded search.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/sat_hierarchical.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Two-level random DTD: root -> groups of g, g -> leaves x/y, with
// random relative keys and inclusions at context g or root.
Specification RandomRelativeSpec(uint64_t seed) {
  uint64_t state = seed;
  int root_groups = 1 + NextRandom(&state) % 2;
  std::string dtd_text = "<!ELEMENT r (";
  for (int i = 0; i < root_groups; ++i) {
    if (i > 0) dtd_text += ",";
    dtd_text += "g";
  }
  dtd_text += ")>\n";
  // Group content: one or two children from {x, y}, possibly a choice.
  switch (NextRandom(&state) % 3) {
    case 0: dtd_text += "<!ELEMENT g (x, y)>\n"; break;
    case 1: dtd_text += "<!ELEMENT g (x, x, (y|%))>\n"; break;
    default: dtd_text += "<!ELEMENT g ((x|y), y)>\n"; break;
  }
  dtd_text += "<!ATTLIST x v>\n<!ATTLIST y v>\n";

  std::string constraints;
  int num_constraints = 1 + NextRandom(&state) % 2;
  const char* leaves[] = {"x", "y"};
  for (int c = 0; c < num_constraints; ++c) {
    const char* t1 = leaves[NextRandom(&state) % 2];
    const char* t2 = leaves[NextRandom(&state) % 2];
    if (NextRandom(&state) % 2 == 0) {
      constraints += "g(" + std::string(t1) + ".v -> " + t1 + ")\n";
    } else {
      constraints +=
          "fk g(" + std::string(t1) + ".v <= " + t2 + ".v)\n";
    }
  }
  return Specification::Parse(dtd_text, constraints).ValueOrDie();
}

class RelativeOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelativeOracleSweep, HierarchicalAgreesWithBoundedSearch) {
  Specification spec = RandomRelativeSpec(GetParam());
  Result<ConsistencyVerdict> checker =
      CheckHierarchicalConsistency(spec.dtd, spec.constraints);
  if (!checker.ok()) {
    // Non-hierarchical random instance: skip (covered elsewhere).
    ASSERT_EQ(checker.status().code(), StatusCode::kUnsupported);
    return;
  }
  BoundedSearchOptions bounds;
  bounds.max_nodes = 8;
  bounds.num_values = 2;
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict search,
      BoundedSearchConsistency(spec.dtd, spec.constraints, bounds));
  if (search.outcome == ConsistencyOutcome::kConsistent) {
    EXPECT_EQ(checker->outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  if (checker->outcome == ConsistencyOutcome::kInconsistent) {
    EXPECT_NE(search.outcome, ConsistencyOutcome::kConsistent)
        << spec.ToString();
  }
  // Consistent hierarchical verdicts must come with a valid witness
  // (validated internally; presence is asserted here).
  if (checker->outcome == ConsistencyOutcome::kConsistent) {
    EXPECT_TRUE(checker->witness.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelativeOracleSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

}  // namespace
}  // namespace xmlverify
