// SAT(AC) checker tests: unary keys/foreign keys, multi-attribute
// primary keys, witnesses, and forced-empty handling.
#include "core/sat_absolute.h"

#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "core/specification.h"
#include "tests/test_util.h"
#include "xml/validator.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

TEST(AbsoluteTest, KeysOnlyAlwaysConsistentWhenDtdIs) {
  Specification spec = Parse(R"(
<!ELEMENT r (a+)>
<!ATTLIST a id>
)",
                             "a.id -> a\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  ASSERT_TRUE(verdict.witness.has_value());
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(AbsoluteTest, ForeignKeyIntoSingletonForcesSmallExtent) {
  // Exactly one b; every a refers to b's id; a-ids are keys, so at
  // most one a — but the DTD wants two.
  Specification spec = Parse(R"(
<!ELEMENT r (a, a, b)>
<!ATTLIST a ref>
<!ATTLIST b id>
)",
                             R"(
a.ref -> a
fk a.ref <= b.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(AbsoluteTest, ForeignKeyWithoutKeyOnChildIsFine) {
  // Same shape but a.ref is not a key: both a's can share b's value.
  Specification spec = Parse(R"(
<!ELEMENT r (a, a, b)>
<!ATTLIST a ref>
<!ATTLIST b id>
)",
                             "fk a.ref <= b.id\n");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(AbsoluteTest, CyclicForeignKeysForceEqualCardinalities) {
  // |ext(a)| = |ext(b)| via two foreign keys; the DTD pins
  // |ext(a)| = 2 and allows b*.
  Specification spec = Parse(R"(
<!ELEMENT r (a, a, b*)>
<!ATTLIST a id>
<!ATTLIST b id>
)",
                             R"(
fk a.id <= b.id
fk b.id <= a.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  EXPECT_EQ(verdict.witness->ElementsOfType(b).size(), 2u);
}

TEST(AbsoluteTest, MultiAttributePrimaryKeyUsesProductSpace) {
  // 4 elements, key over (x, y): the foreign keys cap |ext(p.x)| and
  // |ext(p.y)| at 2 each (q.v is a key over two q elements), so the
  // witness must produce 4 distinct pairs from a 2x2 product space.
  Specification spec = Parse(R"(
<!ELEMENT r (p, p, p, p, q, q)>
<!ATTLIST p x y>
<!ATTLIST q v>
)",
                             R"(
p[x,y] -> p
fk p.x <= q.v
fk p.y <= q.v
)");
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcMultiPrimary);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(AbsoluteTest, MultiAttributeKeysSolveFromDegenerateDeepeningCap) {
  // deepening_initial_cap = 1 used to pin the iterative-deepening loop
  // at its cap-squaring fixed point (1*1 = 1) and spin forever. The
  // deadline is purely a hang guard; the verdict must be definitive.
  Specification spec = Parse(R"(
<!ELEMENT r (p, p, p, p, q, q)>
<!ATTLIST p x y>
<!ATTLIST q v>
)",
                             R"(
p[x,y] -> p
fk p.x <= q.v
fk p.y <= q.v
)");
  AbsoluteCheckOptions options;
  options.deepening_initial_cap = BigInt(1);
  options.solver.deadline = Deadline::AfterMillis(10000);
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckAbsoluteConsistency(spec.dtd, spec.constraints, options));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
}

TEST(AbsoluteTest, MultiAttributeKeyTooTightIsInconsistent) {
  // Five p's but the product space |ext(p.x)| * |ext(p.y)| is capped
  // at 2 * 2 = 4 by the foreign keys into the two q values.
  Specification spec = Parse(R"(
<!ELEMENT r (p, p, p, p, p, q, q)>
<!ATTLIST p x y>
<!ATTLIST q v>
)",
                             R"(
p[x,y] -> p
fk p.x <= q.v
fk p.y <= q.v
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent)
      << verdict.note;
}

TEST(AbsoluteTest, DisjointKeysSupported) {
  Specification spec = Parse(R"(
<!ELEMENT r (p+)>
<!ATTLIST p a b c d>
)",
                             R"(
p[a,b] -> p
p[c,d] -> p
)");
  EXPECT_TRUE(spec.constraints.AbsoluteKeysDisjoint());
  EXPECT_FALSE(spec.constraints.AbsoluteKeysPrimary());
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(AbsoluteTest, OverlappingKeysRejectedAsUndecidable) {
  Specification spec = Parse(R"(
<!ELEMENT r (p+)>
<!ATTLIST p a b c>
)",
                             R"(
p[a,b] -> p
p[b,c] -> p
)");
  Result<ConsistencyVerdict> verdict =
      CheckAbsoluteConsistency(spec.dtd, spec.constraints);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kUnsupported);
}

TEST(AbsoluteTest, MultiAttributeInclusionRejected) {
  Specification spec = Parse(R"(
<!ELEMENT r (p, q)>
<!ATTLIST p a b>
<!ATTLIST q c d>
)",
                             "p[a,b] <= q[c,d]\n");
  Result<ConsistencyVerdict> verdict =
      CheckAbsoluteConsistency(spec.dtd, spec.constraints);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kUnsupported);
}

TEST(AbsoluteTest, ForcedEmptyTypes) {
  Specification spec = Parse(R"(
<!ELEMENT r (a|b)>
<!ATTLIST a id>
<!ATTLIST b id>
)",
                             "");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  AbsoluteCheckOptions options;
  options.forced_empty_types = {a};
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckAbsoluteConsistency(spec.dtd, spec.constraints, options));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_TRUE(verdict.witness->ElementsOfType(a).empty());

  // Forcing both alternatives empty is impossible.
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  options.forced_empty_types = {a, b};
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict2,
      CheckAbsoluteConsistency(spec.dtd, spec.constraints, options));
  EXPECT_EQ(verdict2.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(AbsoluteTest, UnproductiveDtdIsInconsistent) {
  // <!ELEMENT a (a)> admits no finite tree; the connectivity-aware
  // flow encoding must refute it even without constraints.
  Specification spec = Parse(R"(
<!ELEMENT r (a)>
<!ELEMENT a (a)>
)",
                             "");
  EXPECT_FALSE(spec.dtd.IsSatisfiable());
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(AbsoluteTest, RecursiveDtdWithConstraints) {
  // Recursive DTD: each node optionally has a child; keys still work
  // and the connectivity constraints exclude orphan cycles.
  Specification spec = Parse(R"(
<!ELEMENT r (node)>
<!ELEMENT node (node|leaf)>
<!ELEMENT leaf EMPTY>
<!ATTLIST node id>
<!ATTLIST leaf id>
)",
                             R"(
node.id -> node
fk leaf.id <= node.id
)");
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(AbsoluteTest, RecursiveDtdCardinalityClash) {
  // Every chain node needs a distinct id referencing the single
  // anchor's id: at most one value available, but ids are keys and
  // the DTD forces at least two nodes.
  Specification spec = Parse(R"(
<!ELEMENT r (node, anchor)>
<!ELEMENT node (node|%)>
<!ELEMENT anchor EMPTY>
<!ATTLIST node id>
<!ATTLIST anchor id>
)",
                             R"(
node.id -> node
anchor.id -> anchor
fk node.id <= anchor.id
)");
  // One node is fine (one id value); the spec as written is
  // consistent. Force >= 2 nodes by nesting.
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                       CheckAbsoluteConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);

  Specification deeper = Parse(R"(
<!ELEMENT r (node, anchor)>
<!ELEMENT node (inner)>
<!ELEMENT inner (node|%)>
<!ELEMENT anchor EMPTY>
<!ATTLIST node id>
<!ATTLIST inner id>
<!ATTLIST anchor id>
)",
                               R"(
inner.id -> inner
anchor.id -> anchor
fk inner.id <= anchor.id
fk node.id <= inner.id
)");
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict2,
      CheckAbsoluteConsistency(deeper.dtd, deeper.constraints));
  EXPECT_EQ(verdict2.outcome, ConsistencyOutcome::kConsistent);
}

}  // namespace
}  // namespace xmlverify
