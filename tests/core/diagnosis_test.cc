// Minimal inconsistent core extraction.
#include "core/diagnosis.h"

#include <gtest/gtest.h>

#include "base/resource_guard.h"
#include "core/implication.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(DiagnosisTest, ShrinksToTheConflictingPair) {
  // Only the key on a.ref and the inclusion into the singleton b are
  // needed for the contradiction; the c-constraints are noise.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a, a, b, c+)>
<!ATTLIST a ref>
<!ATTLIST b id>
<!ATTLIST c v>
)",
                           R"(
a.ref -> a
a.ref <= b.id
c.v -> c
b.id <= c.v
)")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(ConstraintSet core,
                       MinimizeInconsistentCore(spec.dtd, spec.constraints));
  // Core: the key on a.ref plus the inclusion a.ref <= b.id.
  EXPECT_EQ(core.absolute_keys().size(), 1u);
  EXPECT_EQ(core.absolute_inclusions().size(), 1u);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  EXPECT_EQ(core.absolute_keys()[0].type, a);
}

TEST(DiagnosisTest, ProbesGetFreshBudgetsNotTheCallersAccounting) {
  // Regression: MinimizeInconsistentCore used to hand the caller's
  // ConsistencyChecker::Options — including its live ResourceBudget
  // accounting — to every deletion probe, so charges accumulated
  // across the |Sigma|+1 probes and late probes spuriously exhausted.
  // Each probe must instead get a budget with the caller's CEILINGS
  // but fresh accounting: a caller whose own budget sits near its
  // memory ceiling must not poison the probes.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a, a, b)>
<!ATTLIST a id>
<!ATTLIST b id>
)",
                           R"(
a.id -> a
a.id <= b.id
b.id -> b
)")
          .ValueOrDie();
  DiagnosisOptions options;
  options.checker.budget.set_memory_limit_bytes(8 << 20);
  // Park the caller's accounting 1KB below its ceiling for the whole
  // minimization. Probes sharing this accounting would all fail with
  // RESOURCE_EXHAUSTED; probes with fresh accounting never notice.
  ScopedMemoryCharge parked(options.checker.budget, (8 << 20) - 1024,
                            "test/parked");
  ASSERT_OK(parked.status());
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet core,
      MinimizeInconsistentCore(spec.dtd, spec.constraints, options));
  // 1-minimal: exactly the key on a.id and the inclusion into the
  // singleton b; the vacuous b.id -> b is deleted.
  EXPECT_EQ(core.size(), 2);
  EXPECT_EQ(core.absolute_keys().size(), 1u);
  EXPECT_EQ(core.absolute_inclusions().size(), 1u);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  EXPECT_EQ(core.absolute_keys()[0].type, a);
}

TEST(DiagnosisTest, ImplicationPruningLeavesNoImpliedConstraintInTheCore) {
  // The pipeline's guarantee after the implication pruning pass: no
  // kept constraint is implied by the rest of the core. The redundant
  // transitive inclusion a.v <= c.v must never survive alongside
  // a.v <= b.v and b.v <= c.v, whichever pass removes it.
  Specification tight =
      Specification::Parse(R"(
<!ELEMENT r (a, a, b, c+)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)",
                           R"(
a.v -> a
a.v <= b.v
b.v <= c.v
a.v <= c.v
c.v -> c
b.v -> b
)")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet core,
      MinimizeInconsistentCore(tight.dtd, tight.constraints));
  // Core: a.v -> a plus a.v <= b.v (two a-values into one b slot).
  // Everything else — including the redundant a.v <= c.v — is gone.
  EXPECT_EQ(core.size(), 2);
  // And 1-minimality holds: dropping either member yields consistency.
  ConsistencyChecker checker;
  Specification reduced{tight.dtd, core};
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(reduced));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(DiagnosisTest, RejectsConsistentSpecifications) {
  Specification spec =
      Specification::Parse("<!ELEMENT r (a+)>\n<!ATTLIST a v>\n",
                           "a.v -> a\n")
          .ValueOrDie();
  EXPECT_FALSE(MinimizeInconsistentCore(spec.dtd, spec.constraints).ok());
}

TEST(DiagnosisTest, GeographyCoreKeepsTheCountingArgument) {
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT db (country+)>
<!ELEMENT country (province+, capital+)>
<!ELEMENT province (capital, city*)>
<!ATTLIST country name>
<!ATTLIST province name>
<!ATTLIST capital inProvince>
)",
                           R"(
country.name -> country
country(province.name -> province)
country(capital.inProvince -> capital)
country(capital.inProvince <= province.name)
)")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(ConstraintSet core,
                       MinimizeInconsistentCore(spec.dtd, spec.constraints));
  // The absolute country key and the relative province key are not
  // part of the counting argument; the capital key and the inclusion
  // are.
  EXPECT_TRUE(core.absolute_keys().empty());
  EXPECT_EQ(core.relative_keys().size(), 1u);
  EXPECT_EQ(core.relative_inclusions().size(), 1u);
  // And the core is itself inconsistent.
  ConsistencyChecker checker;
  Specification reduced{spec.dtd, core};
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(reduced));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent);
}

TEST(RedundancyTest, DropsTransitivelyImpliedInclusions) {
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a*, b*, c*)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)",
                           R"(
a.v <= b.v
b.v <= c.v
a.v <= c.v
)")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet pruned,
      RemoveRedundantConstraints(spec.dtd, spec.constraints));
  EXPECT_EQ(pruned.absolute_inclusions().size(), 2u);
  // The surviving pair still implies the dropped one.
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict verdict,
      CheckInclusionImplication(spec.dtd, pruned,
                                AbsoluteInclusion{a, {"v"}, c, {"v"}}));
  EXPECT_TRUE(verdict.implied);
}

TEST(RedundancyTest, DropsKeysForcedByTheDtd) {
  // ext(b) = 1 by the DTD, so b.v -> b is vacuous.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a*, b)>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                           "a.v -> a\nb.v -> b\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet pruned,
      RemoveRedundantConstraints(spec.dtd, spec.constraints));
  ASSERT_EQ(pruned.absolute_keys().size(), 1u);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  EXPECT_EQ(pruned.absolute_keys()[0].type, a);
}

TEST(RedundancyTest, KeepsLoadBearingConstraints) {
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a+, b+)>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                           "a.v -> a\nfk a.v <= b.v\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet pruned,
      RemoveRedundantConstraints(spec.dtd, spec.constraints));
  EXPECT_EQ(pruned.size(), spec.constraints.size());
}

}  // namespace
}  // namespace xmlverify
