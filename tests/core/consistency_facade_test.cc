// ConsistencyChecker facade: classification-driven dispatch and
// verdict annotation.
#include "core/consistency.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

TEST(FacadeTest, ClassifiesAndAnnotates) {
  struct Case {
    const char* dtd;
    const char* constraints;
    ConstraintClass expected_class;
  };
  const Case cases[] = {
      {"<!ELEMENT r (a+)>\n<!ATTLIST a v>", "a.v -> a\n",
       ConstraintClass::kAcKeysOnly},
      {"<!ELEMENT r (a+, b+)>\n<!ATTLIST a v>\n<!ATTLIST b v>",
       "fk a.v <= b.v\n", ConstraintClass::kAcUnary},
      {"<!ELEMENT r (a+)>\n<!ATTLIST a v w>", "a[v,w] -> a\n",
       ConstraintClass::kAcMultiPrimary},
      {"<!ELEMENT r (a+, b+)>\n<!ATTLIST a v w>\n<!ATTLIST b v w>",
       "a[v,w] <= b[v,w]\n", ConstraintClass::kAcMultiGeneral},
      {"<!ELEMENT r (a+)>\n<!ATTLIST a v>", "r._*.a.v -> r._*.a\n",
       ConstraintClass::kAcRegular},
      {"<!ELEMENT r (a+)>\n<!ELEMENT a (b*)>\n<!ATTLIST b v>",
       "a(b.v -> b)\n", ConstraintClass::kRelative},
      {"<!ELEMENT r (a+)>\n<!ELEMENT a (b*)>\n<!ATTLIST a v>\n"
       "<!ATTLIST b v>",
       "a.v -> a\na(b.v -> b)\n", ConstraintClass::kMixedRelative},
  };
  ConsistencyChecker checker;
  for (const Case& c : cases) {
    Specification spec = Parse(c.dtd, c.constraints);
    EXPECT_EQ(spec.Classify(), c.expected_class) << c.constraints;
    ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
    // The verdict note names the class.
    EXPECT_NE(verdict.note.find("class:"), std::string::npos)
        << c.constraints;
  }
}

TEST(FacadeTest, EmptyConstraintSetIsJustDtdSatisfiability) {
  Specification spec = Parse("<!ELEMENT r (a+)>", "");
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(FacadeTest, UndecidableClassFallsBackToBoundedSearch) {
  // Multi-attribute inclusion: undecidable class; the consistent
  // instance is still found by bounded search.
  Specification spec = Parse(
      "<!ELEMENT r (p, q)>\n<!ATTLIST p a b>\n<!ATTLIST q c d>\n",
      "p[a,b] <= q[c,d]\n");
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcMultiGeneral);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_NE(verdict.note.find("undecidable"), std::string::npos);
}

TEST(FacadeTest, WitnessCanBeDisabled) {
  Specification spec = Parse("<!ELEMENT r (a+)>\n<!ATTLIST a v>",
                             "a.v -> a\n");
  ConsistencyChecker::Options options;
  options.build_witness = false;
  ConsistencyChecker checker(options);
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_FALSE(verdict.witness.has_value());
}

TEST(SpecificationTest, ParseErrorsPropagate) {
  EXPECT_FALSE(Specification::Parse("garbage", "").ok());
  EXPECT_FALSE(
      Specification::Parse("<!ELEMENT r (a)>", "a.v -> a\n").ok());
}

}  // namespace
}  // namespace xmlverify
