// The layered implication engine: quick-tier soundness (every rule
// cross-checked against the full contrapositive encoding), tier
// attribution, memoization, and the set-level QuickImpliesAll
// primitive behind incremental re-verification.
#include "core/implication_engine.h"

#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "core/specification.h"
#include "tests/test_util.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

constexpr char kChainDtd[] = R"(
<!ELEMENT r (a+, b+, c+)>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
<!ATTLIST a v w>
<!ATTLIST b v>
<!ATTLIST c v>
)";

// Quick-tier "implied" must agree with the full encoding whenever the
// flavour is decidable; asserts the tier as well.
void ExpectQuickAgreesWithFull(const Specification& spec,
                               const AbsoluteKey& phi) {
  ImplicationChecker engine;
  ASSERT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints, phi));
  if (!phi.IsUnary()) return;  // full tier is unary-only
  ImplicationEngineOptions no_quick;
  no_quick.use_quick = false;
  no_quick.use_memo = false;
  ImplicationChecker full(no_quick);
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer answer,
                       full.CheckKey(spec.dtd, spec.constraints, phi));
  EXPECT_TRUE(answer.implied);
  EXPECT_EQ(answer.tier, ImplicationTier::kFull);
}

TEST(QuickTierTest, VerbatimMatchesModuloAttributeOrder) {
  Specification spec = Parse(R"(
<!ELEMENT r (a+)>
<!ATTLIST a x y>
)",
                             "a[x,y] -> a\n");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ImplicationChecker engine;
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  AbsoluteKey{a, {"x", "y"}}));
  // Attribute tuples are sets here: [y,x] is the same key.
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  AbsoluteKey{a, {"y", "x"}}));
  EXPECT_FALSE(engine.QuickImplies(spec.dtd, spec.constraints,
                                   AbsoluteKey{a, {"x"}}));
}

TEST(QuickTierTest, KeySubsumptionOverSupersetAttributes) {
  Specification spec = Parse(kChainDtd, "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  // a[v] -> a gives a[v,w] -> a for free.
  ExpectQuickAgreesWithFull(spec, AbsoluteKey{a, {"v", "w"}});
}

TEST(QuickTierTest, SingletonRootKeysAreVacuous) {
  Specification spec = Parse("<!ELEMENT r (a*)>\n<!ATTLIST r id>\n"
                             "<!ATTLIST a v>\n",
                             "a.v <= a.v\n");
  ASSERT_OK_AND_ASSIGN(int r, spec.dtd.TypeId("r"));
  ExpectQuickAgreesWithFull(spec, AbsoluteKey{r, {"id"}});
}

TEST(QuickTierTest, InclusionReflexivity) {
  Specification spec = Parse(kChainDtd, "");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ImplicationChecker engine;
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  AbsoluteInclusion{a, {"v"}, a, {"v"}}));
  EXPECT_FALSE(engine.QuickImplies(spec.dtd, spec.constraints,
                                   AbsoluteInclusion{a, {"v"}, a, {"w"}}));
}

TEST(QuickTierTest, InclusionClosureTransitivity) {
  Specification spec = Parse(kChainDtd, "a.v <= b.v\nb.v <= c.v\n");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  ImplicationChecker engine;
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  AbsoluteInclusion{a, {"v"}, c, {"v"}}));
  // The reverse is not implied, and the quick tier must not claim it.
  EXPECT_FALSE(engine.QuickImplies(spec.dtd, spec.constraints,
                                   AbsoluteInclusion{c, {"v"}, a, {"v"}}));
}

TEST(QuickTierTest, RegularKeyPathContainment) {
  // Sigma keys ALL items (path r._*.item); phi keys only the items
  // under left — a smaller node set, so implied.
  Specification spec = Parse(R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item*)>
<!ELEMENT right (item*)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)",
                             "r._*.item.id -> r._*.item\n");
  Specification phi_spec = Parse(R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item*)>
<!ELEMENT right (item*)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)",
                                 "r.left.item.id -> r.left.item\n");
  const RegularKey& phi = phi_spec.constraints.regular_keys()[0];
  ImplicationChecker engine;
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints, phi));
  // The reverse direction (narrow key does not cover all items).
  EXPECT_FALSE(engine.QuickImplies(phi_spec.dtd, phi_spec.constraints,
                                   spec.constraints.regular_keys()[0]));
  // Cross-check with the full tier.
  ImplicationEngineOptions no_quick;
  no_quick.use_quick = false;
  no_quick.use_memo = false;
  ImplicationChecker full(no_quick);
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer answer,
                       full.CheckKey(spec.dtd, spec.constraints, phi));
  EXPECT_TRUE(answer.implied);
}

TEST(QuickTierTest, RootContextRelativeEqualsAbsolute) {
  Specification spec = Parse(R"(
<!ELEMENT r (a+)>
<!ATTLIST a v>
)",
                             "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(int r, spec.dtd.TypeId("r"));
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ImplicationChecker engine;
  // r(a.v -> a) at the root context is the absolute key.
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  RelativeKey{r, a, "v"}));
}

TEST(QuickTierTest, AbsoluteKeyStrengthensRelativeKey) {
  // A document-wide key certainly keys within every subtree.
  Specification spec = Parse(R"(
<!ELEMENT r (g+)>
<!ELEMENT g (a*)>
<!ATTLIST a v>
)",
                             "a.v -> a\n");
  ASSERT_OK_AND_ASSIGN(int g, spec.dtd.TypeId("g"));
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ImplicationChecker engine;
  EXPECT_TRUE(engine.QuickImplies(spec.dtd, spec.constraints,
                                  RelativeKey{g, a, "v"}));
}

TEST(LayeredCheckTest, QuickTierAnswersBeforeTheSolver) {
  Specification spec = Parse(kChainDtd, "a.v <= b.v\n");
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  StatsRegistry registry;
  TraceSession session(&registry);
  ImplicationChecker engine;
  ASSERT_OK_AND_ASSIGN(
      ImplicationAnswer answer,
      engine.CheckInclusion(spec.dtd, spec.constraints,
                            AbsoluteInclusion{a, {"v"}, b, {"v"}}));
  EXPECT_TRUE(answer.implied);
  EXPECT_EQ(answer.tier, ImplicationTier::kQuick);
  EXPECT_EQ(answer.rule, "verbatim");
  EXPECT_GE(registry.Counter("impl/quick_hits"), 1);
  EXPECT_EQ(registry.Counter("impl/full_checks"), 0);
}

TEST(LayeredCheckTest, MissFallsBackToFullAndMemoizes) {
  Specification spec = Parse(kChainDtd, "a.v <= b.v\nb.v <= c.v\n");
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  const AbsoluteInclusion phi{c, {"v"}, a, {"v"}};  // not implied
  ImplicationChecker::GlobalMemo().Clear();
  StatsRegistry registry;
  TraceSession session(&registry);
  ImplicationEngineOptions options;
  options.full.build_counterexample = false;
  ImplicationChecker engine(options);
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer cold,
                       engine.CheckInclusion(spec.dtd, spec.constraints, phi));
  EXPECT_FALSE(cold.implied);
  EXPECT_EQ(cold.tier, ImplicationTier::kFull);
  EXPECT_EQ(registry.Counter("impl/full_checks"), 1);
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer warm,
                       engine.CheckInclusion(spec.dtd, spec.constraints, phi));
  EXPECT_FALSE(warm.implied);
  EXPECT_EQ(warm.tier, ImplicationTier::kMemo);
  EXPECT_EQ(registry.Counter("impl/full_checks"), 1);
  EXPECT_GE(registry.Counter("impl/memo_hits"), 1);
}

TEST(LayeredCheckTest, MemoizedNegativeStillBuildsCounterexamples) {
  // The memo stores verdicts only; a caller that wants the
  // counterexample must get a fresh solve, not a bare "false".
  Specification spec = Parse(kChainDtd, "a.v <= b.v\n");
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  const AbsoluteInclusion phi{c, {"v"}, a, {"v"}};
  ImplicationChecker::GlobalMemo().Clear();
  ImplicationEngineOptions no_ce;
  no_ce.full.build_counterexample = false;
  ImplicationChecker first(no_ce);
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer seeded,
                       first.CheckInclusion(spec.dtd, spec.constraints, phi));
  ASSERT_FALSE(seeded.implied);

  ImplicationChecker second;  // counterexamples on (default)
  ASSERT_OK_AND_ASSIGN(ImplicationAnswer answer,
                       second.CheckInclusion(spec.dtd, spec.constraints, phi));
  EXPECT_FALSE(answer.implied);
  EXPECT_EQ(answer.tier, ImplicationTier::kFull);  // memo hit refused
  ASSERT_TRUE(answer.counterexample.has_value());
  EXPECT_OK(CheckDocument(*answer.counterexample, spec.dtd,
                          spec.constraints));
  ConstraintSet only_phi;
  only_phi.Add(phi);
  EXPECT_FALSE(
      CheckConstraints(*answer.counterexample, spec.dtd, only_phi).ok());
}

TEST(QuickImpliesAllTest, DropsAndReorderings) {
  Specification big = Parse(kChainDtd, "a.v -> a\na.v <= b.v\nb.v <= c.v\n");
  Specification small = Parse(kChainDtd, "b.v <= c.v\na.v -> a\n");
  Specification trans = Parse(kChainDtd, "a.v <= c.v\n");
  Specification other = Parse(kChainDtd, "c.v <= a.v\n");
  ImplicationChecker engine;
  // Superset implies any reordered subset...
  EXPECT_TRUE(engine.QuickImpliesAll(big.dtd, big.constraints,
                                     small.constraints));
  // ... and closure consequences ...
  EXPECT_TRUE(engine.QuickImpliesAll(big.dtd, big.constraints,
                                     trans.constraints));
  // ... but never unrelated constraints.
  EXPECT_FALSE(engine.QuickImpliesAll(big.dtd, big.constraints,
                                      other.constraints));
  // The subset does not imply the superset (a.v <= b.v is missing).
  EXPECT_FALSE(engine.QuickImpliesAll(small.dtd, small.constraints,
                                      big.constraints));
}

}  // namespace
}  // namespace xmlverify
