// SAT(HRC) checker tests: scope decomposition, conflicting pairs,
// cross-scope key freshness, witness stitching.
#include "core/sat_hierarchical.h"

#include <gtest/gtest.h>

#include "checker/document_checker.h"
#include "constraints/relative_geometry.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

constexpr char kDeptDtd[] = R"(
<!ELEMENT company (dept, dept)>
<!ELEMENT dept (team+, badge, badge)>
<!ELEMENT team (member+)>
<!ELEMENT member EMPTY>
<!ELEMENT badge EMPTY>
<!ATTLIST dept name>
<!ATTLIST team name>
<!ATTLIST member eid>
<!ATTLIST badge code>
)";

TEST(HierarchicalTest, RelativeKeysPerScopeAreSatisfiable) {
  Specification spec = Parse(kDeptDtd, R"(
dept(team.name -> team)
dept(member.eid -> member)
)");
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckHierarchicalConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(HierarchicalTest, ScopeLocalCountingContradiction) {
  // Within each dept: badges (exactly 2, distinct codes) must draw
  // their codes from team names of the same dept, and teams of a dept
  // are capped at one by making name a key against a single value...
  // simpler: require badge codes to come from member eids with a
  // single member per dept.
  Specification spec = Parse(R"(
<!ELEMENT company (dept+)>
<!ELEMENT dept (member, badge, badge)>
<!ELEMENT member EMPTY>
<!ELEMENT badge EMPTY>
<!ATTLIST member eid>
<!ATTLIST badge code>
)",
                             R"(
dept(badge.code -> badge)
dept(badge.code <= member.eid)
)");
  // Two badges with distinct codes squeezed into one member value.
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckHierarchicalConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kInconsistent)
      << verdict.note;
}

TEST(HierarchicalTest, AncestorKeyProjectsIntoDeepScopes) {
  // company-wide relative key on member eids, with members living in
  // team scopes nested under dept scopes: the witness must keep eids
  // globally distinct across all scopes.
  Specification spec = Parse(kDeptDtd, R"(
company(member.eid -> member)
dept(team.name -> team)
)");
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckHierarchicalConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(HierarchicalTest, NonHierarchicalIsRejected) {
  // dept-context inclusion reaching through the team context.
  Specification spec = Parse(kDeptDtd, R"(
team(member.eid -> member)
dept(badge.code <= member.eid)
)");
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_FALSE(classification.hierarchical);
  Result<ConsistencyVerdict> verdict =
      CheckHierarchicalConsistency(spec.dtd, spec.constraints);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kUnsupported);
}

TEST(HierarchicalTest, AbsoluteInclusionCrossingScopesIsConflicting) {
  // An absolute (context = root) inclusion whose types live inside
  // dept scopes: the pair (root, dept) conflicts, so the
  // specification leaves HRC.
  Specification spec = Parse(kDeptDtd, R"(
dept(team.name -> team)
member.eid <= badge.code
)");
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_FALSE(classification.hierarchical);
  EXPECT_NE(classification.conflict.find("dept"), std::string::npos);
}

TEST(HierarchicalTest, AbsoluteConstraintsFoldIn) {
  // An absolute key (context company == root) mixes with relative
  // ones.
  Specification spec = Parse(kDeptDtd, R"(
dept.name -> dept
dept(team.name -> team)
)");
  ASSERT_OK_AND_ASSIGN(
      ConsistencyVerdict verdict,
      CheckHierarchicalConsistency(spec.dtd, spec.constraints));
  ASSERT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent) << verdict.note;
  EXPECT_OK(CheckDocument(*verdict.witness, spec.dtd, spec.constraints));
}

TEST(HierarchicalTest, LocalityMeasuresScopeDepth) {
  Specification shallow = Parse(kDeptDtd, R"(
dept(team.name -> team)
team(member.eid -> member)
)");
  ASSERT_OK_AND_ASSIGN(RelativeClassification c1,
                       ClassifyRelative(shallow.dtd, shallow.constraints));
  EXPECT_TRUE(c1.hierarchical);
  EXPECT_EQ(c1.locality, 2);

  Specification deep = Parse(kDeptDtd, R"(
dept(member.eid -> member)
)");
  ASSERT_OK_AND_ASSIGN(RelativeClassification c2,
                       ClassifyRelative(deep.dtd, deep.constraints));
  EXPECT_TRUE(c2.hierarchical);
  // dept scope reaches member through team: depth 3.
  EXPECT_EQ(c2.locality, 3);
}

TEST(HierarchicalTest, RecursiveDtdUnsupported) {
  Specification spec = Parse(R"(
<!ELEMENT r (part)>
<!ELEMENT part (part|%)>
<!ATTLIST part id>
)",
                             "part(part.id -> part)\n");
  Result<ConsistencyVerdict> verdict =
      CheckHierarchicalConsistency(spec.dtd, spec.constraints);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kUnsupported);
}

TEST(GeometryTest, ScopeTypesStopAtContexts) {
  Specification spec = Parse(kDeptDtd, R"(
dept(team.name -> team)
team(member.eid -> member)
)");
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet relative,
      WithAbsoluteAsRelative(spec.constraints, spec.dtd.root()));
  ASSERT_OK_AND_ASSIGN(RelativeGeometry geometry,
                       RelativeGeometry::Analyze(spec.dtd, relative));
  ASSERT_OK_AND_ASSIGN(int dept, spec.dtd.TypeId("dept"));
  ASSERT_OK_AND_ASSIGN(int team, spec.dtd.TypeId("team"));
  ASSERT_OK_AND_ASSIGN(int member, spec.dtd.TypeId("member"));
  ASSERT_OK_AND_ASSIGN(int badge, spec.dtd.TypeId("badge"));
  std::vector<int> dept_scope = geometry.ScopeTypes(dept);
  // dept scope: dept, team (leaf), badge — but NOT member (inside the
  // team scope).
  EXPECT_NE(std::find(dept_scope.begin(), dept_scope.end(), team),
            dept_scope.end());
  EXPECT_NE(std::find(dept_scope.begin(), dept_scope.end(), badge),
            dept_scope.end());
  EXPECT_EQ(std::find(dept_scope.begin(), dept_scope.end(), member),
            dept_scope.end());
  // The scope DTD truncates team to empty content but keeps its
  // attributes.
  ASSERT_OK_AND_ASSIGN(Dtd scope_dtd, geometry.ScopeDtd(dept));
  ASSERT_OK_AND_ASSIGN(int scope_team, scope_dtd.TypeId("team"));
  EXPECT_TRUE(scope_dtd.ChildTypes(scope_team).empty());
  EXPECT_TRUE(scope_dtd.HasAttribute(scope_team, "name"));
  // The scope root loses its attributes.
  ASSERT_OK_AND_ASSIGN(int scope_dept, scope_dtd.TypeId("dept"));
  EXPECT_TRUE(scope_dtd.Attributes(scope_dept).empty());
}

}  // namespace
}  // namespace xmlverify
