// Dynamic constraint checking against hand-built documents.
#include "checker/document_checker.h"

#include <gtest/gtest.h>

#include "core/specification.h"
#include "tests/test_util.h"
#include "xml/xml_parser.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& dtd, const std::string& constraints) {
  return Specification::Parse(dtd, constraints).ValueOrDie();
}

constexpr char kOrdersDtd[] = R"(
<!ELEMENT shop (customer+, order*)>
<!ELEMENT customer EMPTY>
<!ELEMENT order (line+)>
<!ELEMENT line EMPTY>
<!ATTLIST customer cid>
<!ATTLIST order oid buyer>
<!ATTLIST line sku>
)";

XmlTree Doc(const Dtd& dtd, const std::string& text) {
  return ParseXmlDocument(text, dtd).ValueOrDie();
}

TEST(DocumentCheckerTest, AbsoluteKeyViolation) {
  Specification spec = Parse(kOrdersDtd, "customer.cid -> customer\n");
  XmlTree good = Doc(spec.dtd, R"(
<shop><customer cid="1"/><customer cid="2"/></shop>)");
  EXPECT_OK(CheckDocument(good, spec.dtd, spec.constraints));
  XmlTree bad = Doc(spec.dtd, R"(
<shop><customer cid="1"/><customer cid="1"/></shop>)");
  EXPECT_FALSE(CheckDocument(bad, spec.dtd, spec.constraints).ok());
}

TEST(DocumentCheckerTest, MultiAttributeKey) {
  Specification spec = Parse(kOrdersDtd, "order[oid,buyer] -> order\n");
  XmlTree good = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="1" buyer="a"><line sku="s"/></order>
  <order oid="1" buyer="b"><line sku="s"/></order>
</shop>)");
  EXPECT_OK(CheckDocument(good, spec.dtd, spec.constraints));
  XmlTree bad = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="1" buyer="a"><line sku="s"/></order>
  <order oid="1" buyer="a"><line sku="t"/></order>
</shop>)");
  EXPECT_FALSE(CheckDocument(bad, spec.dtd, spec.constraints).ok());
}

TEST(DocumentCheckerTest, InclusionViolation) {
  Specification spec = Parse(kOrdersDtd, "order.buyer <= customer.cid\n");
  XmlTree good = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="o1" buyer="1"><line sku="s"/></order>
</shop>)");
  EXPECT_OK(CheckDocument(good, spec.dtd, spec.constraints));
  XmlTree dangling = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="o1" buyer="2"><line sku="s"/></order>
</shop>)");
  EXPECT_FALSE(CheckDocument(dangling, spec.dtd, spec.constraints).ok());
}

TEST(DocumentCheckerTest, RelativeKeyScopesPerContext) {
  // sku must be unique per order, but may repeat across orders.
  Specification spec = Parse(kOrdersDtd, "order(line.sku -> line)\n");
  XmlTree good = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="o1" buyer="1"><line sku="a"/><line sku="b"/></order>
  <order oid="o2" buyer="1"><line sku="a"/></order>
</shop>)");
  EXPECT_OK(CheckDocument(good, spec.dtd, spec.constraints));
  XmlTree bad = Doc(spec.dtd, R"(
<shop><customer cid="1"/>
  <order oid="o1" buyer="1"><line sku="a"/><line sku="a"/></order>
</shop>)");
  EXPECT_FALSE(CheckDocument(bad, spec.dtd, spec.constraints).ok());
}

TEST(DocumentCheckerTest, RelativeInclusionScopesPerContext) {
  Specification spec = Parse(R"(
<!ELEMENT db (region+)>
<!ELEMENT region (city+, ref+)>
<!ELEMENT city EMPTY>
<!ELEMENT ref EMPTY>
<!ATTLIST city name>
<!ATTLIST ref to>
)",
                             "region(ref.to <= city.name)\n");
  // The ref in region 2 names a city of region 1: violates the
  // RELATIVE inclusion even though globally the value exists.
  XmlTree cross = Doc(spec.dtd, R"(
<db>
  <region><city name="a"/><ref to="a"/></region>
  <region><city name="b"/><ref to="a"/></region>
</db>)");
  EXPECT_FALSE(CheckDocument(cross, spec.dtd, spec.constraints).ok());
  // As an ABSOLUTE inclusion it would be fine.
  Specification absolute = Parse(R"(
<!ELEMENT db (region+)>
<!ELEMENT region (city+, ref+)>
<!ELEMENT city EMPTY>
<!ELEMENT ref EMPTY>
<!ATTLIST city name>
<!ATTLIST ref to>
)",
                                 "ref.to <= city.name\n");
  EXPECT_OK(CheckDocument(cross, absolute.dtd, absolute.constraints));
}

TEST(DocumentCheckerTest, RegularPathConstraints) {
  Specification spec = Parse(R"(
<!ELEMENT r (left, right)>
<!ELEMENT left (item+)>
<!ELEMENT right (item+)>
<!ELEMENT item EMPTY>
<!ATTLIST item id>
)",
                             "r.left.item.id -> r.left.item\n");
  // Duplicates on the right are fine; on the left they violate.
  XmlTree right_dup = Doc(spec.dtd, R"(
<r><left><item id="1"/><item id="2"/></left>
   <right><item id="x"/><item id="x"/></right></r>)");
  EXPECT_OK(CheckDocument(right_dup, spec.dtd, spec.constraints));
  XmlTree left_dup = Doc(spec.dtd, R"(
<r><left><item id="1"/><item id="1"/></left>
   <right><item id="x"/></right></r>)");
  EXPECT_FALSE(CheckDocument(left_dup, spec.dtd, spec.constraints).ok());
}

TEST(DocumentCheckerTest, NodesOnPathMatchesWildcards) {
  Specification spec = Parse(R"(
<!ELEMENT r (a)>
<!ELEMENT a (b)>
<!ELEMENT b EMPTY>
<!ATTLIST b v>
)",
                             "");
  XmlTree doc = Doc(spec.dtd, "<r><a><b v='1'/></a></r>");
  auto resolve = [&spec](const std::string& name) {
    return spec.dtd.FindType(name);
  };
  Regex deep = ParseRegex("r._*.b", resolve).ValueOrDie();
  EXPECT_EQ(NodesOnPath(doc, spec.dtd, deep).size(), 1u);
  Regex exact = ParseRegex("r.a.b", resolve).ValueOrDie();
  EXPECT_EQ(NodesOnPath(doc, spec.dtd, exact).size(), 1u);
  Regex wrong = ParseRegex("r.b", resolve).ValueOrDie();
  EXPECT_TRUE(NodesOnPath(doc, spec.dtd, wrong).empty());
}

}  // namespace
}  // namespace xmlverify
