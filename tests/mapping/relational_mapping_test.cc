// Relational schema -> XML specification mapping.
#include "mapping/relational_mapping.h"

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

RelationalSchema OrdersSchema() {
  RelationalSchema schema;
  RelationalTable customers;
  customers.name = "customer";
  customers.columns = {"cid", "region"};
  customers.primary_key = {"cid"};
  customers.min_rows = 1;
  RelationalTable orders;
  orders.name = "order_row";
  orders.columns = {"oid", "buyer"};
  orders.primary_key = {"oid"};
  orders.foreign_keys = {{"buyer", "customer", "cid"}};
  schema.tables = {customers, orders};
  return schema;
}

TEST(RelationalMappingTest, MapsAndStaysConsistent) {
  ASSERT_OK_AND_ASSIGN(Specification spec,
                       MapRelationalSchema(OrdersSchema()));
  EXPECT_EQ(spec.dtd.TypeName(spec.dtd.root()), "db");
  EXPECT_EQ(spec.constraints.absolute_keys().size(), 2u);
  EXPECT_EQ(spec.constraints.absolute_inclusions().size(), 1u);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
  ASSERT_TRUE(verdict.witness.has_value());
}

TEST(RelationalMappingTest, CompositeKeysLandInThm31Fragment) {
  RelationalSchema schema;
  RelationalTable enrollment;
  enrollment.name = "enrollment";
  enrollment.columns = {"student", "course", "grade"};
  enrollment.primary_key = {"student", "course"};
  enrollment.min_rows = 2;
  schema.tables = {enrollment};
  ASSERT_OK_AND_ASSIGN(Specification spec, MapRelationalSchema(schema));
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcMultiPrimary);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(RelationalMappingTest, CircularMandatoryForeignKeysAreSatisfiable) {
  // a.ref -> b.id and b.ref -> a.id, each table nonempty: consistent
  // (rows can reference each other).
  RelationalSchema schema;
  RelationalTable a;
  a.name = "a";
  a.columns = {"id", "ref"};
  a.primary_key = {"id"};
  a.foreign_keys = {{"ref", "b", "id"}};
  a.min_rows = 1;
  RelationalTable b;
  b.name = "b";
  b.columns = {"id", "ref"};
  b.primary_key = {"id"};
  b.foreign_keys = {{"ref", "a", "id"}};
  b.min_rows = 1;
  schema.tables = {a, b};
  ASSERT_OK_AND_ASSIGN(Specification spec, MapRelationalSchema(schema));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(RelationalMappingTest, RowMinimumsInteractWithKeys) {
  // 3 mandatory orders all referencing a single mandatory customer
  // whose cid is also constrained to equal the order oid values:
  // oid is a key (3 distinct values) but they must all fit in the
  // customer's single cid value — inconsistent.
  RelationalSchema schema = OrdersSchema();
  schema.tables[1].min_rows = 3;
  // Make oid reference cid as well: oid values must come from cids.
  schema.tables[1].foreign_keys.push_back({"oid", "customer", "cid"});
  // And cap customers at exactly one row by... min_rows only sets a
  // lower bound, so instead make cid reference oid back — forcing
  // |cid values| = |oid values| is still satisfiable. Use a stricter
  // trick: customers reference their own cid from a single-row table.
  RelationalTable config;
  config.name = "config";
  config.columns = {"the_cid"};
  config.primary_key = {"the_cid"};
  config.min_rows = 1;
  schema.tables.push_back(config);
  schema.tables[0].foreign_keys.push_back({"cid", "config", "the_cid"});
  // config has exactly-one-row ONLY if the DTD caps it; min_rows does
  // not, so this stays consistent. The real check: verdict is exact
  // either way and the witness validates.
  ASSERT_OK_AND_ASSIGN(Specification spec, MapRelationalSchema(schema));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);
}

TEST(RelationalMappingTest, ValidationErrors) {
  RelationalSchema empty;
  EXPECT_FALSE(MapRelationalSchema(empty).ok());

  RelationalSchema bad_fk;
  RelationalTable t;
  t.name = "t";
  t.columns = {"x"};
  t.foreign_keys = {{"x", "missing", "y"}};
  bad_fk.tables = {t};
  EXPECT_FALSE(MapRelationalSchema(bad_fk).ok());

  RelationalSchema bad_key;
  RelationalTable u;
  u.name = "u";
  u.columns = {"x"};
  u.primary_key = {"nope"};
  bad_key.tables = {u};
  EXPECT_FALSE(MapRelationalSchema(bad_key).ok());

  RelationalSchema dup;
  dup.tables = {t, t};
  EXPECT_FALSE(MapRelationalSchema(dup).ok());
}

}  // namespace
}  // namespace xmlverify
