// Shared test helpers: Status assertion macros and common fixtures.
#ifndef XMLVERIFY_TESTS_TEST_UTIL_H_
#define XMLVERIFY_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "base/status.h"

#define ASSERT_OK(expr)                                       \
  do {                                                        \
    ::xmlverify::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define EXPECT_OK(expr)                                       \
  do {                                                        \
    ::xmlverify::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

// Evaluates a Result<T> expression and binds the value, failing the
// test on error.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                      \
  ASSERT_OK_AND_ASSIGN_IMPL(                                  \
      XMLVERIFY_CONCAT(_assert_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(result, lhs, rexpr)         \
  auto result = (rexpr);                                      \
  ASSERT_TRUE(result.ok()) << result.status().ToString();     \
  lhs = std::move(result).value();

#endif  // XMLVERIFY_TESTS_TEST_UTIL_H_
