// Constraint syntax parsing and classification.
#include "constraints/constraint_parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dtd_parser.h"

namespace xmlverify {
namespace {

Dtd TestDtd() {
  return ParseDtd(R"(
<!ELEMENT r (country+, registry)>
<!ELEMENT country (province+)>
<!ELEMENT province EMPTY>
<!ELEMENT registry (entry*)>
<!ELEMENT entry EMPTY>
<!ATTLIST country name code>
<!ATTLIST province name>
<!ATTLIST entry name>
)")
      .ValueOrDie();
}

TEST(ConstraintParserTest, AbsoluteUnaryKey) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(ConstraintSet set,
                       ParseConstraints("country.name -> country", dtd));
  ASSERT_EQ(set.absolute_keys().size(), 1u);
  EXPECT_TRUE(set.absolute_keys()[0].IsUnary());
  EXPECT_EQ(set.absolute_keys()[0].attributes[0], "name");
}

TEST(ConstraintParserTest, AbsoluteMultiAttributeKey) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet set,
      ParseConstraints("country[name,code] -> country", dtd));
  ASSERT_EQ(set.absolute_keys().size(), 1u);
  EXPECT_EQ(set.absolute_keys()[0].attributes.size(), 2u);
}

TEST(ConstraintParserTest, InclusionAndForeignKey) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet bare,
      ParseConstraints("province.name <= entry.name", dtd));
  EXPECT_EQ(bare.absolute_inclusions().size(), 1u);
  EXPECT_TRUE(bare.absolute_keys().empty());

  ASSERT_OK_AND_ASSIGN(
      ConstraintSet fk,
      ParseConstraints("fk province.name <= entry.name", dtd));
  EXPECT_EQ(fk.absolute_inclusions().size(), 1u);
  ASSERT_EQ(fk.absolute_keys().size(), 1u);  // key on the parent side
  EXPECT_EQ(fk.absolute_keys()[0].attributes[0], "name");
}

TEST(ConstraintParserTest, RelativeForms) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet set,
      ParseConstraints(R"(
country(province.name -> province)
fk country(province.name <= province.name)
)",
                       dtd));
  // The fk's implied key duplicates the explicit one and is deduped.
  EXPECT_EQ(set.relative_keys().size(), 1u);
  EXPECT_EQ(set.relative_inclusions().size(), 1u);
}

TEST(ConstraintParserTest, RegularForms) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet set,
      ParseConstraints(R"(
r._*.province.name -> r._*.province
r._*.province.name <= r.registry.entry.name
)",
                       dtd));
  EXPECT_EQ(set.regular_keys().size(), 1u);
  EXPECT_EQ(set.regular_inclusions().size(), 1u);
}

TEST(ConstraintParserTest, RegularKeySideMismatchRejected) {
  Dtd dtd = TestDtd();
  EXPECT_FALSE(
      ParseConstraints("r._*.province.name -> r.country.province", dtd)
          .ok());
  // Equivalent-but-differently-written sides are accepted (language
  // equivalence, not textual equality).
  EXPECT_OK(ParseConstraints(
                "r.country.province.name -> r.(country).province", dtd)
                .status());
}

TEST(ConstraintParserTest, CommentsAndBlankLines) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(ConstraintSet set, ParseConstraints(R"(
# a comment
country.name -> country   # trailing comment

)",
                                                           dtd));
  EXPECT_EQ(set.size(), 1);
}

TEST(ConstraintParserTest, Errors) {
  Dtd dtd = TestDtd();
  EXPECT_FALSE(ParseConstraints("country.name", dtd).ok());
  EXPECT_FALSE(ParseConstraints("unknown.name -> unknown", dtd).ok());
  EXPECT_FALSE(ParseConstraints("country.bogus -> country", dtd).ok());
  EXPECT_FALSE(ParseConstraints("country.name -> province", dtd).ok());
  EXPECT_FALSE(
      ParseConstraints("country[name] <= province[name,name2]", dtd).ok());
  EXPECT_FALSE(ParseConstraints("fk country.name -> country", dtd).ok());
  // Line numbers in errors.
  Result<ConstraintSet> bad =
      ParseConstraints("country.name -> country\nbroken line\n", dtd);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(ConstraintSetTest, ValidateCatchesArityAndDuplicates) {
  Dtd dtd = TestDtd();
  ConstraintSet set;
  ASSERT_OK_AND_ASSIGN(int country, dtd.TypeId("country"));
  set.Add(AbsoluteKey{country, {"name", "name"}});
  EXPECT_FALSE(set.Validate(dtd).ok());
}

TEST(ConstraintSetTest, ToStringRendersAllForms) {
  Dtd dtd = TestDtd();
  ASSERT_OK_AND_ASSIGN(ConstraintSet set, ParseConstraints(R"(
country[name,code] -> country
province.name <= entry.name
country(province.name -> province)
)",
                                                           dtd));
  std::string text = set.ToString(dtd);
  EXPECT_NE(text.find("country[name,code] -> country"), std::string::npos);
  EXPECT_NE(text.find("province.name <= entry.name"), std::string::npos);
  EXPECT_NE(text.find("country(province.name -> province)"),
            std::string::npos);
}

}  // namespace
}  // namespace xmlverify
