// Unary inclusion-dependency closure (the [12] cubic algorithm).
#include "constraints/inclusion_closure.h"

#include <gtest/gtest.h>

#include "core/implication.h"
#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification Parse(const std::string& constraints) {
  return Specification::Parse(R"(
<!ELEMENT r (a*, b*, c*, d*)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
<!ATTLIST d v>
)",
                              constraints)
      .ValueOrDie();
}

TEST(InclusionClosureTest, TransitivityAndReflexivity) {
  Specification spec = Parse("a.v <= b.v\nb.v <= c.v\n");
  InclusionClosure closure(spec.constraints);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  ASSERT_OK_AND_ASSIGN(int d, spec.dtd.TypeId("d"));
  EXPECT_TRUE(closure.Implies(a, "v", c, "v"));   // transitivity
  EXPECT_TRUE(closure.Implies(a, "v", a, "v"));   // reflexivity
  EXPECT_TRUE(closure.Implies(d, "v", d, "v"));   // even off-graph
  EXPECT_FALSE(closure.Implies(c, "v", a, "v"));  // no reversal
  EXPECT_FALSE(closure.Implies(a, "v", d, "v"));
}

TEST(InclusionClosureTest, DerivedInclusionsEnumerated) {
  Specification spec = Parse("a.v <= b.v\nb.v <= c.v\n");
  InclusionClosure closure(spec.constraints);
  std::vector<AbsoluteInclusion> derived = closure.DerivedInclusions();
  // a<=b, b<=c, a<=c.
  EXPECT_EQ(derived.size(), 3u);
}

TEST(InclusionClosureTest, RedundancyDetection) {
  Specification spec = Parse("a.v <= b.v\nb.v <= c.v\na.v <= c.v\n");
  InclusionClosure closure(spec.constraints);
  std::vector<AbsoluteInclusion> redundant =
      closure.RedundantInclusions(spec.constraints);
  ASSERT_EQ(redundant.size(), 1u);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int c, spec.dtd.TypeId("c"));
  EXPECT_EQ(redundant[0].child_type, a);
  EXPECT_EQ(redundant[0].parent_type, c);
}

TEST(InclusionClosureTest, CyclesAreFine) {
  Specification spec = Parse("a.v <= b.v\nb.v <= a.v\n");
  InclusionClosure closure(spec.constraints);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  EXPECT_TRUE(closure.Implies(a, "v", b, "v"));
  EXPECT_TRUE(closure.Implies(b, "v", a, "v"));
}

// The DTD-free closure is SOUND for the DTD-aware implication
// problem: everything it derives is confirmed by the full checker.
TEST(InclusionClosureTest, SoundForDtdAwareImplication) {
  Specification spec = Parse("a.v <= b.v\nb.v <= c.v\nc.v <= d.v\n");
  InclusionClosure closure(spec.constraints);
  for (const AbsoluteInclusion& derived : closure.DerivedInclusions()) {
    ASSERT_OK_AND_ASSIGN(
        ImplicationVerdict verdict,
        CheckInclusionImplication(spec.dtd, spec.constraints, derived));
    EXPECT_TRUE(verdict.implied) << derived.ToString(spec.dtd);
  }
}

// And it is INCOMPLETE by design: DTD cardinalities can force
// inclusions the pure dependency theory cannot see.
TEST(InclusionClosureTest, IncompleteWithoutTheDtd) {
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a, b)>
<!ATTLIST a v>
<!ATTLIST b v>
)",
                           "b.v -> b\nfk b.v <= a.v\na.v -> a\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, spec.dtd.TypeId("b"));
  // With exactly one a and one b, b.v <= a.v plus both keys forces
  // a.v <= b.v as well — but only the DTD-aware checker sees it.
  InclusionClosure closure(spec.constraints);
  EXPECT_FALSE(closure.Implies(a, "v", b, "v"));
  ASSERT_OK_AND_ASSIGN(
      ImplicationVerdict verdict,
      CheckInclusionImplication(spec.dtd, spec.constraints,
                                AbsoluteInclusion{a, {"v"}, b, {"v"}}));
  EXPECT_TRUE(verdict.implied);
}

}  // namespace
}  // namespace xmlverify
