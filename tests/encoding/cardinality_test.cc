// Direct tests of the C_Sigma emission layer.
#include "encoding/cardinality.h"

#include <gtest/gtest.h>

#include "core/specification.h"
#include "ilp/solver.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

struct Emitted {
  IntegerProgram program;
  DtdFlowSystem flow;
  AbsoluteCardinality cardinality;
};

Result<Emitted> Emit(const Specification& spec,
                     std::vector<int> forced_empty = {}) {
  Emitted emitted;
  ASSIGN_OR_RETURN(emitted.flow,
                   DtdFlowSystem::Build(spec.dtd, nullptr, &emitted.program));
  ASSIGN_OR_RETURN(emitted.cardinality,
                   AbsoluteCardinality::Emit(spec.dtd, spec.constraints,
                                             forced_empty, &emitted.flow,
                                             &emitted.program));
  return emitted;
}

TEST(CardinalityTest, AttrVariablesBoundedByExtents) {
  Specification spec =
      Specification::Parse("<!ELEMENT r (a, a, a)>\n<!ATTLIST a v>\n",
                           "")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(Emitted emitted, Emit(spec));
  SolveResult solved = IlpSolver().Solve(emitted.program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  BigInt attr_count =
      emitted.cardinality.AttrCount(a, "v", solved.assignment);
  // 1 <= |ext(a.v)| <= |ext(a)| = 3.
  EXPECT_GE(attr_count, BigInt(1));
  EXPECT_LE(attr_count, BigInt(3));
}

TEST(CardinalityTest, UnaryKeyForcesEquality) {
  Specification spec =
      Specification::Parse("<!ELEMENT r (a, a, a)>\n<!ATTLIST a v>\n",
                           "a.v -> a\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(Emitted emitted, Emit(spec));
  SolveResult solved = IlpSolver().Solve(emitted.program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  EXPECT_EQ(emitted.cardinality.AttrCount(a, "v", solved.assignment),
            BigInt(3));
}

TEST(CardinalityTest, MultiAttributeKeyBecomesPrequadraticChain) {
  Specification spec =
      Specification::Parse("<!ELEMENT r (p+)>\n<!ATTLIST p a b c>\n",
                           "p[a,b,c] -> p\n")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(Emitted emitted, Emit(spec));
  // k = 3 attributes -> a chain of 2 prequadratic constraints.
  EXPECT_EQ(emitted.program.prequadratics().size(), 2u);
}

TEST(CardinalityTest, ForcedEmptyPropagates) {
  Specification spec =
      Specification::Parse("<!ELEMENT r (a|b)>\n<!ATTLIST a v>\n"
                           "<!ATTLIST b v>\n",
                           "")
          .ValueOrDie();
  ASSERT_OK_AND_ASSIGN(int a, spec.dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(Emitted emitted, Emit(spec, {a}));
  SolveResult solved = IlpSolver().Solve(emitted.program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  VarId ext_a = emitted.cardinality.ExtVar(a);
  ASSERT_GE(ext_a, 0);
  EXPECT_EQ(solved.assignment[ext_a], BigInt(0));
}

TEST(CardinalityTest, InclusionIntoUnreachableTypeForcesEmptyChild) {
  // b is reachable only through a choice branch that also contains
  // the child... construct directly: parent type u unreachable.
  Dtd::Builder builder({"r", "child", "u"}, "r");
  builder.SetContent("r", "child*,(u|%)");
  builder.AddAttribute("child", "v");
  builder.AddAttribute("u", "v");
  Dtd dtd = builder.Build().ValueOrDie();
  // Make `u` genuinely unreachable by a second DTD where it is absent
  // from content: simplest is to force-empty it and verify the
  // inclusion pushes the child to zero through the normal constraint.
  Specification spec;
  spec.dtd = dtd;
  int child = dtd.TypeId("child").ValueOrDie();
  int u = dtd.TypeId("u").ValueOrDie();
  spec.constraints.Add(AbsoluteInclusion{child, {"v"}, u, {"v"}});
  Emitted emitted = Emit(spec, {u}).ValueOrDie();
  SolveResult solved = IlpSolver().Solve(emitted.program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  EXPECT_EQ(solved.assignment[emitted.cardinality.ExtVar(child)], BigInt(0));
}

TEST(CardinalityTest, RejectsWrongConstraintKinds) {
  Specification relative =
      Specification::Parse("<!ELEMENT r (a*)>\n<!ELEMENT a (b*)>\n"
                           "<!ATTLIST b v>\n",
                           "a(b.v -> b)\n")
          .ValueOrDie();
  EXPECT_FALSE(Emit(relative).ok());
}

}  // namespace
}  // namespace xmlverify
