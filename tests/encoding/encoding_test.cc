// Narrowing and flow-encoder tests: the flow system must characterize
// exactly the achievable count vectors, and every integer solution
// must reconstruct into a conforming tree.
#include <gtest/gtest.h>

#include "encoding/flow_encoder.h"
#include "encoding/narrowing.h"
#include "ilp/solver.h"
#include "tests/test_util.h"
#include "xml/dtd_parser.h"
#include "xml/validator.h"

namespace xmlverify {
namespace {

TEST(NarrowingTest, ProducesBinaryRules) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(R"(
<!ELEMENT r ((a|b)*, c)>
<!ELEMENT a (#PCDATA)>
)"));
  ASSERT_OK_AND_ASSIGN(NarrowedDtd narrowed, NarrowedDtd::Build(dtd));
  EXPECT_GT(narrowed.num_symbols(), narrowed.num_element_types);
  // Every rule is one of the binary forms.
  for (int symbol = 0; symbol < narrowed.num_symbols(); ++symbol) {
    const NarrowRule& rule = narrowed.rules[symbol];
    switch (rule.kind) {
      case NarrowRule::Kind::kSeq:
      case NarrowRule::Kind::kAlt:
        EXPECT_GE(rule.a, 0);
        EXPECT_GE(rule.b, 0);
        break;
      case NarrowRule::Kind::kStar:
        EXPECT_GE(rule.a, 0);
        break;
      case NarrowRule::Kind::kElement:
        EXPECT_LT(rule.a, narrowed.num_element_types);
        break;
      case NarrowRule::Kind::kEpsilon:
      case NarrowRule::Kind::kString:
        break;
    }
  }
  // Nonterminals know their owner.
  for (int symbol = narrowed.num_element_types;
       symbol < narrowed.num_symbols(); ++symbol) {
    EXPECT_EQ(narrowed.owner[symbol], dtd.root());
  }
}

// Parameterized sweep: for several DTDs, solve the bare flow system
// and verify the reconstructed tree conforms and realizes the counts.
class FlowRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FlowRoundTrip, SolutionsReconstructToConformingTrees) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(GetParam()));
  IntegerProgram program;
  ASSERT_OK_AND_ASSIGN(DtdFlowSystem flow,
                       DtdFlowSystem::Build(dtd, nullptr, &program));
  SolveResult solved = IlpSolver().Solve(program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  ASSERT_OK_AND_ASSIGN(XmlTree tree, flow.BuildTree(solved.assignment));
  // Witness structure must conform (attributes are absent, so check
  // only content models by stripping attribute requirements: simplest
  // is to re-validate with a DTD whose R() is empty — here we just
  // check content via CheckConforms on DTDs with no attributes).
  EXPECT_OK(CheckConforms(tree, dtd));
  // Extent counts in the tree equal the flow solution.
  for (int type = 0; type < dtd.num_element_types(); ++type) {
    BigInt total(0);
    for (const auto& [state, var] : flow.StatesOf(type)) {
      (void)state;
      total += solved.assignment[var];
    }
    EXPECT_EQ(BigInt(static_cast<int64_t>(tree.ElementsOfType(type).size())),
              total)
        << dtd.TypeName(type);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dtds, FlowRoundTrip,
    ::testing::Values(
        "<!ELEMENT r (a, b)>\n<!ELEMENT a EMPTY>\n<!ELEMENT b EMPTY>",
        "<!ELEMENT r (a+)>\n<!ELEMENT a (b|c)>\n",
        "<!ELEMENT r ((a|b)*, c)>",
        "<!ELEMENT r (a?)>\n<!ELEMENT a (r2*)>\n<!ELEMENT r2 EMPTY>",
        "<!ELEMENT r (item, item, item)>\n<!ELEMENT item (sub*)>",
        // Recursive DTDs exercise the connectivity constraints.
        "<!ELEMENT r (n)>\n<!ELEMENT n (n|leaf)>\n<!ELEMENT leaf EMPTY>",
        "<!ELEMENT r (tree)>\n<!ELEMENT tree (tree, tree)|leaf>\n"
        "<!ELEMENT leaf EMPTY>"));

TEST(FlowTest, ForcedCountsAreRealizedExactly) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>"));
  IntegerProgram program;
  ASSERT_OK_AND_ASSIGN(DtdFlowSystem flow,
                       DtdFlowSystem::Build(dtd, nullptr, &program));
  ASSERT_OK_AND_ASSIGN(int a, dtd.TypeId("a"));
  VarId ext_a = flow.TotalCountVar(a, &program);
  ASSERT_GE(ext_a, 0);
  LinearExpr pin;
  pin.Add(ext_a, BigInt(1));
  program.AddLinear(std::move(pin), Relation::kEq, BigInt(5));
  SolveResult solved = IlpSolver().Solve(program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  ASSERT_OK_AND_ASSIGN(XmlTree tree, flow.BuildTree(solved.assignment));
  EXPECT_EQ(tree.ElementsOfType(a).size(), 5u);
}

TEST(FlowTest, OrphanCyclesAreExcluded) {
  // In r -> (n|%) ; n -> n, the only conforming trees are bare r or
  // infinite chains — so ext(n) must be 0 in any (finite) tree.
  // Without connectivity constraints a flow solution with
  // y_n = y_n (self-loop) could fake ext(n) = 1.
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(R"(
<!ELEMENT r (n|%)>
<!ELEMENT n (n)>
)"));
  IntegerProgram program;
  ASSERT_OK_AND_ASSIGN(DtdFlowSystem flow,
                       DtdFlowSystem::Build(dtd, nullptr, &program));
  ASSERT_OK_AND_ASSIGN(int n, dtd.TypeId("n"));
  VarId ext_n = flow.TotalCountVar(n, &program);
  LinearExpr pin;
  pin.Add(ext_n, BigInt(1));
  program.AddLinear(std::move(pin), Relation::kGe, BigInt(1));
  SolveResult solved = IlpSolver().Solve(program);
  EXPECT_EQ(solved.outcome, SolveOutcome::kUnsat);
}

TEST(FlowTest, RecursiveChainsHaveMatchingLeafCounts) {
  // n -> (n, n) | leaf: a strict binary tree; #leaf = #internal + 1.
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(R"(
<!ELEMENT r (n)>
<!ELEMENT n ((n, n)|leaf)>
)"));
  IntegerProgram program;
  ASSERT_OK_AND_ASSIGN(DtdFlowSystem flow,
                       DtdFlowSystem::Build(dtd, nullptr, &program));
  ASSERT_OK_AND_ASSIGN(int n, dtd.TypeId("n"));
  VarId ext_n = flow.TotalCountVar(n, &program);
  LinearExpr pin;
  pin.Add(ext_n, BigInt(1));
  program.AddLinear(std::move(pin), Relation::kEq, BigInt(7));
  SolveResult solved = IlpSolver().Solve(program);
  ASSERT_EQ(solved.outcome, SolveOutcome::kSat);
  ASSERT_OK_AND_ASSIGN(XmlTree tree, flow.BuildTree(solved.assignment));
  EXPECT_OK(CheckConforms(tree, dtd));
  ASSERT_OK_AND_ASSIGN(int leaf, dtd.TypeId("leaf"));
  EXPECT_EQ(tree.ElementsOfType(n).size(), 7u);
  EXPECT_EQ(tree.ElementsOfType(leaf).size(), 4u);

  // An even n count is impossible for strict binary trees.
  LinearExpr even;
  even.Add(ext_n, BigInt(1));
  IntegerProgram program2;
  ASSERT_OK_AND_ASSIGN(DtdFlowSystem flow2,
                       DtdFlowSystem::Build(dtd, nullptr, &program2));
  VarId ext_n2 = flow2.TotalCountVar(n, &program2);
  LinearExpr pin2;
  pin2.Add(ext_n2, BigInt(1));
  program2.AddLinear(std::move(pin2), Relation::kEq, BigInt(6));
  EXPECT_EQ(IlpSolver().Solve(program2).outcome, SolveOutcome::kUnsat);
}

}  // namespace
}  // namespace xmlverify
