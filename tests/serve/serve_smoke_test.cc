// Smoke test of the real `xmlvc-serve` binary: spawn it on an
// ephemeral port, drive concurrent requests over real sockets, and
// assert the verdicts are byte-identical to what the one-shot `xmlvc`
// CLI prints for the same specifications. The server is bounded with
// --max-requests so it exits on its own and popen/pclose need no
// signal choreography.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/consistency.h"
#include "core/specification.h"
#include "serve/client.h"
#include "tests/test_util.h"

#if defined(XMLVC_SERVE_BINARY_PATH) && defined(XMLVC_BINARY_PATH) && \
    defined(XMLVC_SPECS_DIR)

namespace xmlverify {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out += c;
    }
  }
  return out;
}

// The verdict word in free-form CLI output or a JSON response line.
// Longest name first: CONSISTENT is a substring of INCONSISTENT.
std::string ExtractVerdict(const std::string& text) {
  for (const char* name :
       {"RESOURCE_EXHAUSTED", "DEADLINE_EXCEEDED", "INCONSISTENT",
        "CONSISTENT", "UNKNOWN"}) {
    if (text.find(name) != std::string::npos) return name;
  }
  return "";
}

std::string RunAndCapture(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  size_t read;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, read);
  }
  *exit_code = pclose(pipe);
  return output;
}

TEST(ServeSmokeTest, ConcurrentVerdictsMatchOneShotCli) {
  const std::string specs = XMLVC_SPECS_DIR;
  const std::string school_dtd = ReadFileOrDie(specs + "/school.dtd");
  const std::string school_constraints =
      ReadFileOrDie(specs + "/school.constraints");
  const std::string geography = ReadFileOrDie(specs + "/geography.xvc");

  // Ground truth from the one-shot CLI on the same inputs.
  int exit_code = 0;
  const std::string school_cli = ExtractVerdict(RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " check " + specs + "/school.dtd " +
          specs + "/school.constraints 2>/dev/null",
      &exit_code));
  const std::string geography_cli = ExtractVerdict(
      RunAndCapture(std::string(XMLVC_BINARY_PATH) + " check " + specs +
                        "/geography.xvc 2>/dev/null; exit 0",
                    &exit_code));
  ASSERT_EQ(school_cli, "CONSISTENT");
  ASSERT_EQ(geography_cli, "INCONSISTENT");

  // 2 priming requests + 4 clients x 2 repeats = 10 responses total;
  // the server exits by itself after writing the 10th.
  constexpr int kClients = 4;
  constexpr int kTotalResponses = 2 + kClients * 2;
  FILE* server = popen((std::string(XMLVC_SERVE_BINARY_PATH) +
                        " --port=0 --jobs=2 --max-requests=" +
                        std::to_string(kTotalResponses) + " 2>/dev/null")
                           .c_str(),
                       "r");
  ASSERT_NE(server, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof(line), server), nullptr);
  int port = 0;
  ASSERT_EQ(sscanf(line, "LISTENING 127.0.0.1 %d", &port), 1) << line;
  ASSERT_GT(port, 0);

  const std::string school_request =
      "{\"id\":\"school\",\"dtd\":\"" + JsonEscape(school_dtd) +
      "\",\"constraints\":\"" + JsonEscape(school_constraints) + "\"}";
  const std::string geography_request =
      "{\"id\":\"geo\",\"spec\":\"" + JsonEscape(geography) + "\"}";

  // Prime both cache entries.
  {
    ASSERT_OK_AND_ASSIGN(ServeClient client,
                         ServeClient::Connect("127.0.0.1", port));
    ASSERT_OK(client.SendLine(school_request));
    ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
    EXPECT_EQ(ExtractVerdict(response), school_cli) << response;
    ASSERT_OK(client.SendLine(geography_request));
    ASSERT_OK_AND_ASSIGN(std::string geo_response, client.ReadLine());
    EXPECT_EQ(ExtractVerdict(geo_response), geography_cli) << geo_response;
  }

  // Concurrent clients: every verdict must match the CLI's, and the
  // primed entries must be served from the cache.
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Result<ServeClient> client = ServeClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        errors[i] = client.status().message();
        return;
      }
      for (const auto& [request, want] :
           {std::pair(school_request, school_cli),
            std::pair(geography_request, geography_cli)}) {
        Status sent = client->SendLine(request);
        if (!sent.ok()) {
          errors[i] = sent.message();
          return;
        }
        Result<std::string> response = client->ReadLine();
        if (!response.ok()) {
          errors[i] = response.status().message();
          return;
        }
        if (ExtractVerdict(*response) != want ||
            response->find("\"cached\":true") == std::string::npos) {
          errors[i] = "unexpected response: " + *response;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(errors[i], "") << "client " << i;

  // Response budget spent: the server exits cleanly on its own.
  int server_exit = pclose(server);
  EXPECT_EQ(WEXITSTATUS(server_exit), 0);
}

// Pulls the string value of `key` out of a JSON response line and
// undoes the escapes the serializer applies (the serve protocol only
// ever emits \", \\, \n, \t and \u00XX control escapes; the specs in
// this test exercise the first four).
std::string ExtractJsonString(const std::string& line,
                              const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  size_t start = line.find(marker);
  if (start == std::string::npos) return "";
  start += marker.size();
  std::string out;
  for (size_t i = start; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') return out;
    if (c != '\\' || i + 1 == line.size()) {
      out += c;
      continue;
    }
    char next = line[++i];
    if (next == 'n') {
      out += '\n';
    } else if (next == 't') {
      out += '\t';
    } else {
      out += next;  // \" and \\ decode to the escaped character.
    }
  }
  return out;
}

// The served core must be a genuinely 1-minimal explanation: the core
// itself is INCONSISTENT, and deleting any single constraint line
// from it yields a CONSISTENT specification.
TEST(ServeSmokeTest, ServedCoreIsOneMinimal) {
  const std::string specs = XMLVC_SPECS_DIR;
  const std::string geography = ReadFileOrDie(specs + "/geography.xvc");

  // One core-computing request, one cache-served repeat.
  FILE* server = popen((std::string(XMLVC_SERVE_BINARY_PATH) +
                        " --port=0 --jobs=1 --max-requests=2 2>/dev/null")
                           .c_str(),
                       "r");
  ASSERT_NE(server, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof(line), server), nullptr);
  int port = 0;
  ASSERT_EQ(sscanf(line, "LISTENING 127.0.0.1 %d", &port), 1) << line;

  const std::string request = "{\"id\":\"geo\",\"spec\":\"" +
                              JsonEscape(geography) +
                              "\",\"core\":true}";
  std::string first;
  std::string repeat;
  {
    ASSERT_OK_AND_ASSIGN(ServeClient client,
                         ServeClient::Connect("127.0.0.1", port));
    ASSERT_OK(client.SendLine(request));
    ASSERT_OK_AND_ASSIGN(first, client.ReadLine());
    ASSERT_OK(client.SendLine(request));
    ASSERT_OK_AND_ASSIGN(repeat, client.ReadLine());
  }
  EXPECT_EQ(WEXITSTATUS(pclose(server)), 0);

  ASSERT_EQ(ExtractVerdict(first), "INCONSISTENT") << first;
  const std::string core_text = ExtractJsonString(first, "core");
  ASSERT_NE(core_text, "") << first;
  // The cached repeat serves the identical core without recomputing.
  EXPECT_NE(repeat.find("\"cached\":true"), std::string::npos) << repeat;
  EXPECT_EQ(ExtractJsonString(repeat, "core"), core_text) << repeat;

  // Re-check the core against the specification's own DTD.
  const size_t sep = geography.find("%%");
  ASSERT_NE(sep, std::string::npos);
  const std::string dtd_part = geography.substr(0, sep);

  std::vector<std::string> core_lines;
  std::istringstream core_stream(core_text);
  for (std::string core_line; std::getline(core_stream, core_line);) {
    if (!core_line.empty()) core_lines.push_back(core_line);
  }
  ASSERT_GE(core_lines.size(), 2u) << core_text;

  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(
      Specification core_spec,
      Specification::ParseCombined(dtd_part + "%%\n" + core_text));
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict core_verdict,
                       checker.Check(core_spec));
  EXPECT_EQ(core_verdict.outcome, ConsistencyOutcome::kInconsistent);

  for (size_t skip = 0; skip < core_lines.size(); ++skip) {
    std::string rest;
    for (size_t i = 0; i < core_lines.size(); ++i) {
      if (i != skip) rest += core_lines[i] + "\n";
    }
    ASSERT_OK_AND_ASSIGN(
        Specification reduced,
        Specification::ParseCombined(dtd_part + "%%\n" + rest));
    ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict,
                         checker.Check(reduced));
    EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent)
        << "core stayed inconsistent without line: " << core_lines[skip];
  }
}

}  // namespace
}  // namespace xmlverify

#endif  // XMLVC_SERVE_BINARY_PATH && XMLVC_BINARY_PATH && XMLVC_SPECS_DIR
