// Smoke test of the real `xmlvc-serve` binary: spawn it on an
// ephemeral port, drive concurrent requests over real sockets, and
// assert the verdicts are byte-identical to what the one-shot `xmlvc`
// CLI prints for the same specifications. The server is bounded with
// --max-requests so it exits on its own and popen/pclose need no
// signal choreography.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "tests/test_util.h"

#if defined(XMLVC_SERVE_BINARY_PATH) && defined(XMLVC_BINARY_PATH) && \
    defined(XMLVC_SPECS_DIR)

namespace xmlverify {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      out += c;
    }
  }
  return out;
}

// The verdict word in free-form CLI output or a JSON response line.
// Longest name first: CONSISTENT is a substring of INCONSISTENT.
std::string ExtractVerdict(const std::string& text) {
  for (const char* name :
       {"RESOURCE_EXHAUSTED", "DEADLINE_EXCEEDED", "INCONSISTENT",
        "CONSISTENT", "UNKNOWN"}) {
    if (text.find(name) != std::string::npos) return name;
  }
  return "";
}

std::string RunAndCapture(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  size_t read;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, read);
  }
  *exit_code = pclose(pipe);
  return output;
}

TEST(ServeSmokeTest, ConcurrentVerdictsMatchOneShotCli) {
  const std::string specs = XMLVC_SPECS_DIR;
  const std::string school_dtd = ReadFileOrDie(specs + "/school.dtd");
  const std::string school_constraints =
      ReadFileOrDie(specs + "/school.constraints");
  const std::string geography = ReadFileOrDie(specs + "/geography.xvc");

  // Ground truth from the one-shot CLI on the same inputs.
  int exit_code = 0;
  const std::string school_cli = ExtractVerdict(RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " check " + specs + "/school.dtd " +
          specs + "/school.constraints 2>/dev/null",
      &exit_code));
  const std::string geography_cli = ExtractVerdict(
      RunAndCapture(std::string(XMLVC_BINARY_PATH) + " check " + specs +
                        "/geography.xvc 2>/dev/null; exit 0",
                    &exit_code));
  ASSERT_EQ(school_cli, "CONSISTENT");
  ASSERT_EQ(geography_cli, "INCONSISTENT");

  // 2 priming requests + 4 clients x 2 repeats = 10 responses total;
  // the server exits by itself after writing the 10th.
  constexpr int kClients = 4;
  constexpr int kTotalResponses = 2 + kClients * 2;
  FILE* server = popen((std::string(XMLVC_SERVE_BINARY_PATH) +
                        " --port=0 --jobs=2 --max-requests=" +
                        std::to_string(kTotalResponses) + " 2>/dev/null")
                           .c_str(),
                       "r");
  ASSERT_NE(server, nullptr);
  char line[256];
  ASSERT_NE(fgets(line, sizeof(line), server), nullptr);
  int port = 0;
  ASSERT_EQ(sscanf(line, "LISTENING 127.0.0.1 %d", &port), 1) << line;
  ASSERT_GT(port, 0);

  const std::string school_request =
      "{\"id\":\"school\",\"dtd\":\"" + JsonEscape(school_dtd) +
      "\",\"constraints\":\"" + JsonEscape(school_constraints) + "\"}";
  const std::string geography_request =
      "{\"id\":\"geo\",\"spec\":\"" + JsonEscape(geography) + "\"}";

  // Prime both cache entries.
  {
    ASSERT_OK_AND_ASSIGN(ServeClient client,
                         ServeClient::Connect("127.0.0.1", port));
    ASSERT_OK(client.SendLine(school_request));
    ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
    EXPECT_EQ(ExtractVerdict(response), school_cli) << response;
    ASSERT_OK(client.SendLine(geography_request));
    ASSERT_OK_AND_ASSIGN(std::string geo_response, client.ReadLine());
    EXPECT_EQ(ExtractVerdict(geo_response), geography_cli) << geo_response;
  }

  // Concurrent clients: every verdict must match the CLI's, and the
  // primed entries must be served from the cache.
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Result<ServeClient> client = ServeClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        errors[i] = client.status().message();
        return;
      }
      for (const auto& [request, want] :
           {std::pair(school_request, school_cli),
            std::pair(geography_request, geography_cli)}) {
        Status sent = client->SendLine(request);
        if (!sent.ok()) {
          errors[i] = sent.message();
          return;
        }
        Result<std::string> response = client->ReadLine();
        if (!response.ok()) {
          errors[i] = response.status().message();
          return;
        }
        if (ExtractVerdict(*response) != want ||
            response->find("\"cached\":true") == std::string::npos) {
          errors[i] = "unexpected response: " + *response;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(errors[i], "") << "client " << i;

  // Response budget spent: the server exits cleanly on its own.
  int server_exit = pclose(server);
  EXPECT_EQ(WEXITSTATUS(server_exit), 0);
}

}  // namespace
}  // namespace xmlverify

#endif  // XMLVC_SERVE_BINARY_PATH && XMLVC_BINARY_PATH && XMLVC_SPECS_DIR
