// Durable verdict-snapshot tests (serve/snapshot.h): round-trip
// fidelity, cold starts, per-record corruption tolerance, stale
// fingerprints, truncation, foreign files, write-fault atomicity, and
// the server-level warm restart.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/fault_injection.h"
#include "core/canonical.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/verdict_cache.h"
#include "tests/test_util.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A scratch path under the test's working directory, removed on
/// destruction so runs do not contaminate each other.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("snapshot_test_" + name + ".xvcsnap") {
    std::remove(path_.c_str());
  }
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Populates `cache` with one CONSISTENT entry (with witness) and one
/// INCONSISTENT entry (with core), both with honest fingerprints so
/// the loader's staleness check passes.
void FillCache(VerdictCache* cache) {
  const std::string consistent = "canonical consistent spec text\n";
  cache->Insert(consistent, "raw-a", FingerprintText(consistent),
                ConsistencyOutcome::kConsistent, "witness validated",
                "<r><a x=\"1\"/></r>");
  const std::string inconsistent = "canonical inconsistent spec text\n";
  cache->Insert(inconsistent, "raw-b", FingerprintText(inconsistent),
                ConsistencyOutcome::kInconsistent, "implication closure", "");
  cache->AttachCore(inconsistent, "raw-b", "r.a.x -> r.a\nr.a -> r.a.x\n");
}

TEST(SnapshotTest, RoundTripPreservesEveryField) {
  ScratchFile file("roundtrip");
  VerdictCache source;
  FillCache(&source);

  SnapshotWriteStats written;
  ASSERT_OK(WriteVerdictSnapshot(source, file.path(), &written));
  EXPECT_EQ(written.records_written, 2u);
  EXPECT_GT(written.bytes_written, 0u);

  VerdictCache restored;
  ASSERT_OK_AND_ASSIGN(SnapshotLoadStats loaded,
                       LoadVerdictSnapshot(&restored, file.path()));
  EXPECT_EQ(loaded.records_loaded, 2u);
  EXPECT_EQ(loaded.records_skipped, 0u);

  const std::string consistent = "canonical consistent spec text\n";
  auto entry = restored.LookupCanonical(consistent, consistent);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->outcome, ConsistencyOutcome::kConsistent);
  EXPECT_EQ(entry->note, "witness validated");
  EXPECT_EQ(entry->witness_xml, "<r><a x=\"1\"/></r>");
  EXPECT_EQ(entry->fingerprint, FingerprintText(consistent));

  const std::string inconsistent = "canonical inconsistent spec text\n";
  auto core_entry = restored.LookupCanonical(inconsistent, inconsistent);
  ASSERT_NE(core_entry, nullptr);
  EXPECT_EQ(core_entry->outcome, ConsistencyOutcome::kInconsistent);
  EXPECT_EQ(core_entry->core_text, "r.a.x -> r.a\nr.a -> r.a.x\n");
}

TEST(SnapshotTest, MissingFileIsACleanColdStart) {
  VerdictCache cache;
  ASSERT_OK_AND_ASSIGN(
      SnapshotLoadStats loaded,
      LoadVerdictSnapshot(&cache, "snapshot_test_does_not_exist.xvcsnap"));
  EXPECT_EQ(loaded.records_loaded, 0u);
  EXPECT_EQ(loaded.records_skipped, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotTest, CorruptRecordIsSkippedIndividually) {
  ScratchFile file("corrupt");
  VerdictCache source;
  FillCache(&source);
  ASSERT_OK(WriteVerdictSnapshot(source, file.path()));

  // Flip one payload byte of the first record: its checksum now
  // disagrees, but the loader must resync and keep the second.
  std::string bytes = ReadFile(file.path());
  size_t at = bytes.find("consistent spec");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'X';
  WriteFile(file.path(), bytes);

  VerdictCache restored;
  ASSERT_OK_AND_ASSIGN(SnapshotLoadStats loaded,
                       LoadVerdictSnapshot(&restored, file.path()));
  EXPECT_EQ(loaded.records_loaded, 1u);
  EXPECT_EQ(loaded.records_skipped, 1u);
  EXPECT_EQ(restored.size(), 1u);
}

TEST(SnapshotTest, StaleFingerprintIsSkipped) {
  ScratchFile file("stale");
  VerdictCache source;
  // An entry whose stored fingerprint does not match the canonical
  // text models a snapshot written by an older canonicalizer. The
  // record is internally consistent (checksum passes) but must still
  // be refused, or a wrong verdict could be served under a new
  // canonical identity.
  const std::string text = "canonical text from an older era\n";
  source.Insert(text, "raw", FingerprintText("something else entirely"),
                ConsistencyOutcome::kConsistent, "", "<r/>");
  ASSERT_OK(WriteVerdictSnapshot(source, file.path()));

  VerdictCache restored;
  ASSERT_OK_AND_ASSIGN(SnapshotLoadStats loaded,
                       LoadVerdictSnapshot(&restored, file.path()));
  EXPECT_EQ(loaded.records_loaded, 0u);
  EXPECT_EQ(loaded.records_skipped, 1u);
}

TEST(SnapshotTest, TruncatedFileLoadsThePrefix) {
  ScratchFile file("truncated");
  VerdictCache source;
  FillCache(&source);
  ASSERT_OK(WriteVerdictSnapshot(source, file.path()));

  // Cut the file mid-way through the last record, as a crash during a
  // non-atomic copy would. The intact prefix must survive.
  std::string bytes = ReadFile(file.path());
  WriteFile(file.path(), bytes.substr(0, bytes.size() - 10));

  VerdictCache restored;
  ASSERT_OK_AND_ASSIGN(SnapshotLoadStats loaded,
                       LoadVerdictSnapshot(&restored, file.path()));
  EXPECT_EQ(loaded.records_loaded, 1u);
  EXPECT_EQ(loaded.records_skipped, 1u);
}

TEST(SnapshotTest, ForeignFileIsRefusedOutright) {
  ScratchFile file("foreign");
  WriteFile(file.path(), "this is not a snapshot\n");
  VerdictCache cache;
  Result<SnapshotLoadStats> loaded = LoadVerdictSnapshot(&cache, file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotTest, WriteFaultLeavesPreviousSnapshotIntact) {
  ScratchFile file("writefault");
  VerdictCache source;
  FillCache(&source);
  ASSERT_OK(WriteVerdictSnapshot(source, file.path()));
  std::string good = ReadFile(file.path());
  ASSERT_FALSE(good.empty());

  Status armed = FaultInjector::Arm("cache_snapshot_write");
  if (armed.code() == StatusCode::kUnsupported) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  ASSERT_OK(armed);
  Status write = WriteVerdictSnapshot(source, file.path());
  FaultInjector::Disarm();
  EXPECT_FALSE(write.ok());
  // Atomicity contract: the fault fires before the temp file exists,
  // so the previous snapshot is byte-identical.
  EXPECT_EQ(ReadFile(file.path()), good);
  EXPECT_EQ(ReadFile(file.path() + ".tmp"), "");
}

TEST(SnapshotTest, ReadFaultDropsRecordsIndividually) {
  ScratchFile file("readfault");
  VerdictCache source;
  FillCache(&source);
  ASSERT_OK(WriteVerdictSnapshot(source, file.path()));

  Status armed = FaultInjector::Arm("cache_snapshot_read=1");
  if (armed.code() == StatusCode::kUnsupported) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  ASSERT_OK(armed);
  VerdictCache restored;
  Result<SnapshotLoadStats> loaded = LoadVerdictSnapshot(&restored, file.path());
  FaultInjector::Disarm();
  ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->records_loaded, 1u);
  EXPECT_EQ(loaded->records_skipped, 1u);
}

TEST(SnapshotTest, ServerRestartStartsWarm) {
  ScratchFile file("restart");
  StatsRegistry stats;

  constexpr char kSpec[] =
      "root r\n"
      "<!ELEMENT r (a*)>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a x>\n"
      "%%\n"
      "r.a.x -> r.a\n";
  std::string spec_json;
  for (char c : std::string(kSpec)) {
    if (c == '\n') {
      spec_json += "\\n";
    } else {
      spec_json += c;
    }
  }
  const std::string request =
      "{\"id\":\"warm\",\"spec\":\"" + spec_json + "\"}";

  // First life: solve once, then drain — Shutdown writes the final
  // snapshot even without a periodic interval configured.
  {
    ServeOptions options;
    options.jobs = 1;
    options.stats = &stats;
    options.cache_snapshot_path = file.path();
    ServeServer server(options);
    ASSERT_OK(server.Start());
    ASSERT_OK_AND_ASSIGN(
        ServeClient client,
        ServeClient::Connect("127.0.0.1", server.port()));
    ASSERT_OK(client.SendLine(request));
    ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
    ASSERT_NE(response.find("\"verdict\":\"CONSISTENT\""), std::string::npos)
        << response;
    EXPECT_EQ(response.find("\"cached\":true"), std::string::npos) << response;
    server.Shutdown();
  }
  EXPECT_GE(stats.Counter("serve/cache_snapshot_writes"), 1);
  ASSERT_FALSE(ReadFile(file.path()).empty());

  // Second life: the very first request is served from the restored
  // cache without re-solving.
  StatsRegistry restart_stats;
  ServeOptions options;
  options.jobs = 1;
  options.stats = &restart_stats;
  options.cache_snapshot_path = file.path();
  ServeServer server(options);
  ASSERT_OK(server.Start());
  EXPECT_GE(restart_stats.Counter("serve/cache_snapshot_loaded"), 1);
  ASSERT_OK_AND_ASSIGN(
      ServeClient client,
      ServeClient::Connect("127.0.0.1", server.port()));
  ASSERT_OK(client.SendLine(request));
  ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
  EXPECT_NE(response.find("\"verdict\":\"CONSISTENT\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"cached\":true"), std::string::npos) << response;
  server.Shutdown();
}

}  // namespace
}  // namespace xmlverify
