// End-to-end tests of the in-process verification server: verdict
// correctness, concurrent cache-hit behavior, protocol robustness on
// a live socket, load shedding, and the never-cache-non-definitive
// policy. Each test starts its own server on an ephemeral port.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "tests/test_util.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

// A tiny consistent specification: x keys the a-children of r.
constexpr char kConsistentSpec[] =
    "root r\n"
    "<!ELEMENT r (a*)>\n"
    "<!ELEMENT a (%)>\n"
    "<!ATTLIST a x>\n"
    "%%\n"
    "r.a.x -> r.a\n";

// Inconsistent: two b's must carry distinct y values (key), yet every
// y must occur among the x values of the single a (inclusion) — two
// distinct values cannot fit in a one-element set.
constexpr char kInconsistentSpec[] =
    "root r\n"
    "<!ELEMENT r (a, b, b)>\n"
    "<!ELEMENT a (%)>\n"
    "<!ATTLIST a x>\n"
    "<!ELEMENT b (%)>\n"
    "<!ATTLIST b y>\n"
    "%%\n"
    "r.b.y -> r.b\n"
    "fk r.b.y <= r.a.x\n";

// Lands in the undecidable multi-attribute class AC^{*,*}_{K,FK}:
// the checker's bounded search returns UNKNOWN, quickly and
// deterministically — the canonical never-cache input.
constexpr char kUnknownSpec[] =
    "<!ELEMENT r (a, a, b)>\n"
    "<!ATTLIST a x>\n"
    "<!ATTLIST a y>\n"
    "<!ATTLIST b u>\n"
    "<!ATTLIST b v>\n"
    "%%\n"
    "a[x,y] -> a\n"
    "b[u,v] -> b\n"
    "a[x,y] <= b[u,v]\n";

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string SpecRequest(const std::string& id, const std::string& spec,
                        const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"spec\":\"" + JsonEscape(spec) + "\"" +
         extra + "}";
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServeOptions options) {
    options.stats = &stats_;
    server_ = std::make_unique<ServeServer>(std::move(options));
    ASSERT_OK(server_->Start());
    ASSERT_GT(server_->port(), 0);
  }

  Result<ServeClient> Connect() {
    return ServeClient::Connect("127.0.0.1", server_->port());
  }

  // One request, one response, over a fresh connection.
  std::string RoundTrip(const std::string& request) {
    Result<ServeClient> client = Connect();
    EXPECT_TRUE(client.ok()) << client.status().message();
    EXPECT_TRUE(client->SendLine(request).ok());
    Result<std::string> response = client->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().message();
    return response.ok() ? *response : "";
  }

  StatsRegistry stats_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServerTest, ServesVerdictsAndCachesDefinitiveOnes) {
  StartServer(ServeOptions{.jobs = 2});

  std::string first = RoundTrip(SpecRequest("c1", kConsistentSpec));
  EXPECT_TRUE(Contains(first, "\"id\":\"c1\"")) << first;
  EXPECT_TRUE(Contains(first, "\"verdict\":\"CONSISTENT\"")) << first;
  EXPECT_TRUE(Contains(first, "\"cached\":false")) << first;
  // Witness only on opt-in.
  EXPECT_FALSE(Contains(first, "\"witness\"")) << first;

  std::string repeat =
      RoundTrip(SpecRequest("c2", kConsistentSpec, ",\"witness\":true"));
  EXPECT_TRUE(Contains(repeat, "\"verdict\":\"CONSISTENT\"")) << repeat;
  EXPECT_TRUE(Contains(repeat, "\"cached\":true")) << repeat;
  EXPECT_TRUE(Contains(repeat, "\"witness\":\"")) << repeat;

  std::string inconsistent = RoundTrip(SpecRequest("i1", kInconsistentSpec));
  EXPECT_TRUE(Contains(inconsistent, "\"verdict\":\"INCONSISTENT\""))
      << inconsistent;
  EXPECT_TRUE(Contains(inconsistent, "\"cached\":false")) << inconsistent;
  std::string inconsistent_repeat =
      RoundTrip(SpecRequest("i2", kInconsistentSpec));
  EXPECT_TRUE(Contains(inconsistent_repeat, "\"cached\":true"))
      << inconsistent_repeat;

  server_->Shutdown();
  EXPECT_GE(stats_.Counter("serve/cache_hits"), 2);
}

// kConsistentSpec with its one constraint dropped: same DTD, weaker
// Sigma — the incremental path confirms CONSISTENT from the history
// entry's witness instead of solving.
constexpr char kDroppedConstraintSpec[] =
    "root r\n"
    "<!ELEMENT r (a*)>\n"
    "<!ELEMENT a (%)>\n"
    "<!ATTLIST a x>\n"
    "%%\n";

// kInconsistentSpec plus one extra (absolute) key: a superset of an
// inconsistent Sigma stays inconsistent, and the quick tier sees the
// old constraints verbatim inside the new ones.
constexpr char kExtendedInconsistentSpec[] =
    "root r\n"
    "<!ELEMENT r (a, b, b)>\n"
    "<!ELEMENT a (%)>\n"
    "<!ATTLIST a x>\n"
    "<!ELEMENT b (%)>\n"
    "<!ATTLIST b y>\n"
    "%%\n"
    "r.b.y -> r.b\n"
    "fk r.b.y <= r.a.x\n"
    "b.y -> b\n";

TEST_F(ServerTest, IncrementalReVerificationConfirmsFromHistory) {
  StartServer(ServeOptions{.jobs = 1});

  // Cold solves seed the per-DTD history.
  EXPECT_TRUE(Contains(RoundTrip(SpecRequest("c1", kConsistentSpec)),
                       "\"cached\":false"));
  EXPECT_TRUE(Contains(RoundTrip(SpecRequest("i1", kInconsistentSpec)),
                       "\"verdict\":\"INCONSISTENT\""));

  // CONSISTENT is preserved under dropped constraints (old Sigma
  // implies new Sigma; the old witness is replayed).
  std::string dropped = RoundTrip(SpecRequest("c2", kDroppedConstraintSpec));
  EXPECT_TRUE(Contains(dropped, "\"verdict\":\"CONSISTENT\"")) << dropped;
  EXPECT_TRUE(Contains(dropped, "\"cached\":true")) << dropped;

  // INCONSISTENT is preserved under added constraints (new Sigma
  // implies the old one).
  std::string extended =
      RoundTrip(SpecRequest("i2", kExtendedInconsistentSpec));
  EXPECT_TRUE(Contains(extended, "\"verdict\":\"INCONSISTENT\"")) << extended;
  EXPECT_TRUE(Contains(extended, "\"cached\":true")) << extended;

  // And the confirmations are cached as first-class verdicts: the
  // byte-identical repeats hit the raw tier.
  EXPECT_TRUE(Contains(RoundTrip(SpecRequest("c3", kDroppedConstraintSpec)),
                       "\"cached\":true"));

  server_->Shutdown();
  EXPECT_GE(stats_.Counter("serve/incremental_hits"), 2);
}

TEST_F(ServerTest, NoIncrementalFlagForcesColdSolves) {
  StartServer(ServeOptions{.jobs = 1, .incremental = false});
  EXPECT_TRUE(Contains(RoundTrip(SpecRequest("c1", kConsistentSpec)),
                       "\"cached\":false"));
  std::string dropped = RoundTrip(SpecRequest("c2", kDroppedConstraintSpec));
  EXPECT_TRUE(Contains(dropped, "\"verdict\":\"CONSISTENT\"")) << dropped;
  EXPECT_TRUE(Contains(dropped, "\"cached\":false")) << dropped;
  server_->Shutdown();
  EXPECT_EQ(stats_.Counter("serve/incremental_hits"), 0);
}

TEST_F(ServerTest, CoresComputedOncePerSpecAndServedFromCache) {
  StartServer(ServeOptions{.jobs = 1});

  // First core-requesting INCONSISTENT response pays for the
  // minimization...
  std::string first =
      RoundTrip(SpecRequest("k1", kInconsistentSpec, ",\"core\":true"));
  EXPECT_TRUE(Contains(first, "\"verdict\":\"INCONSISTENT\"")) << first;
  EXPECT_TRUE(Contains(first, "\"core\":\"")) << first;

  // ...repeats serve the attached core straight from the cache...
  std::string repeat =
      RoundTrip(SpecRequest("k2", kInconsistentSpec, ",\"core\":true"));
  EXPECT_TRUE(Contains(repeat, "\"cached\":true")) << repeat;
  EXPECT_TRUE(Contains(repeat, "\"core\":\"")) << repeat;

  // ...clients that did not opt in never see the member...
  EXPECT_FALSE(Contains(RoundTrip(SpecRequest("k3", kInconsistentSpec)),
                        "\"core\""));

  // ...and CONSISTENT verdicts have no core, opted-in or not.
  EXPECT_FALSE(Contains(
      RoundTrip(SpecRequest("k4", kConsistentSpec, ",\"core\":true")),
      "\"core\""));

  server_->Shutdown();
  EXPECT_EQ(stats_.Counter("serve/core_computed"), 1);
  EXPECT_GE(stats_.Counter("serve/cache_core_attached"), 1);
}

TEST_F(ServerTest, PairFormMatchesCombinedFormVerdict) {
  StartServer(ServeOptions{.jobs = 1});
  std::string combined = RoundTrip(SpecRequest("a", kConsistentSpec));
  EXPECT_TRUE(Contains(combined, "\"verdict\":\"CONSISTENT\"")) << combined;

  std::string pair =
      "{\"id\":\"b\",\"dtd\":\"" +
      JsonEscape("<!ELEMENT r (a*)>\n<!ELEMENT a (%)>\n<!ATTLIST a x>\n") +
      "\",\"constraints\":\"" + JsonEscape("r.a.x -> r.a\n") + "\"}";
  std::string response = RoundTrip(pair);
  EXPECT_TRUE(Contains(response, "\"verdict\":\"CONSISTENT\"")) << response;
  // Same spec through a different request form: the canonical tier
  // recognizes it even though the raw keys differ.
  EXPECT_TRUE(Contains(response, "\"cached\":true")) << response;

  // The two forms agree on the fingerprint.
  std::string fp_combined =
      combined.substr(combined.find("\"fingerprint\":\""), 48);
  std::string fp_pair = response.substr(response.find("\"fingerprint\":\""), 48);
  EXPECT_EQ(fp_combined, fp_pair);
}

TEST_F(ServerTest, NonDefinitiveVerdictsAreNeverCached) {
  StartServer(ServeOptions{.jobs = 1});
  for (const char* id : {"u1", "u2", "u3"}) {
    std::string response = RoundTrip(SpecRequest(id, kUnknownSpec));
    EXPECT_TRUE(Contains(response, "\"verdict\":\"UNKNOWN\"")) << response;
    EXPECT_TRUE(Contains(response, "\"cached\":false")) << response;
  }
  server_->Shutdown();
  EXPECT_EQ(stats_.Counter("serve/cache_hits"), 0);
  EXPECT_GE(stats_.Counter("serve/cache_uncacheable"), 3);
}

TEST_F(ServerTest, ConcurrentClientsAllHitTheWarmCache) {
  StartServer(ServeOptions{.jobs = 4});
  // Prime the cache once.
  std::string primed = RoundTrip(SpecRequest("prime", kConsistentSpec));
  ASSERT_TRUE(Contains(primed, "\"verdict\":\"CONSISTENT\"")) << primed;

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &hits, &failures] {
      Result<ServeClient> client = Connect();
      if (!client.ok()) {
        ++failures;
        return;
      }
      std::string id = "cc" + std::to_string(i);
      if (!client->SendLine(SpecRequest(id, kConsistentSpec)).ok()) {
        ++failures;
        return;
      }
      Result<std::string> response = client->ReadLine();
      if (!response.ok()) {
        ++failures;
        return;
      }
      if (Contains(*response, "\"id\":\"" + id + "\"") &&
          Contains(*response, "\"verdict\":\"CONSISTENT\"") &&
          Contains(*response, "\"cached\":true")) {
        ++hits;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(hits.load(), kClients);
}

TEST_F(ServerTest, PipelinedRequestsOnOneConnection) {
  StartServer(ServeOptions{.jobs = 2});
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_OK(client.SendLine(
        SpecRequest("p" + std::to_string(i), kConsistentSpec)));
  }
  client.FinishWriting();
  // Responses may arrive in any order; collect and match by id.
  std::vector<bool> seen(kRequests, false);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
    EXPECT_TRUE(Contains(response, "\"verdict\":\"CONSISTENT\"")) << response;
    for (int j = 0; j < kRequests; ++j) {
      if (Contains(response, "\"id\":\"p" + std::to_string(j) + "\"")) {
        EXPECT_FALSE(seen[j]) << "duplicate response for p" << j;
        seen[j] = true;
      }
    }
  }
  for (int j = 0; j < kRequests; ++j) EXPECT_TRUE(seen[j]) << "p" << j;
}

TEST_F(ServerTest, MalformedLinesGetStructuredErrorsAndConnectionSurvives) {
  StartServer(ServeOptions{.jobs = 1});
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());

  ASSERT_OK(client.SendLine("this is not json"));
  ASSERT_OK_AND_ASSIGN(std::string error1, client.ReadLine());
  EXPECT_TRUE(Contains(error1, "\"error\":\"INVALID_REQUEST\"")) << error1;
  EXPECT_TRUE(Contains(error1, "\"retryable\":false")) << error1;

  // Unknown field — the id is still recovered and echoed.
  ASSERT_OK(client.SendLine(R"({"id":"bad1","spec":"x","bogus":1})"));
  ASSERT_OK_AND_ASSIGN(std::string error2, client.ReadLine());
  EXPECT_TRUE(Contains(error2, "\"id\":\"bad1\"")) << error2;
  EXPECT_TRUE(Contains(error2, "\"error\":\"INVALID_REQUEST\"")) << error2;

  // A spec that parses as JSON but not as a specification.
  ASSERT_OK(client.SendLine(R"({"id":"bad2","spec":"not a spec"})"));
  ASSERT_OK_AND_ASSIGN(std::string error3, client.ReadLine());
  EXPECT_TRUE(Contains(error3, "\"id\":\"bad2\"")) << error3;
  EXPECT_TRUE(Contains(error3, "\"error\":\"INVALID_SPEC\"")) << error3;

  // The connection is still perfectly usable for a real request.
  ASSERT_OK(client.SendLine(SpecRequest("ok", kConsistentSpec)));
  ASSERT_OK_AND_ASSIGN(std::string verdict, client.ReadLine());
  EXPECT_TRUE(Contains(verdict, "\"verdict\":\"CONSISTENT\"")) << verdict;
}

TEST_F(ServerTest, OversizedLinesAreDiscardedNotFatal) {
  StartServer(ServeOptions{.jobs = 1, .max_line_bytes = 1024});
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  std::string huge = "{\"id\":\"big\",\"spec\":\"" + std::string(4096, 'a') +
                     "\"}";
  ASSERT_OK(client.SendLine(huge));
  ASSERT_OK_AND_ASSIGN(std::string error, client.ReadLine());
  EXPECT_TRUE(Contains(error, "\"error\":\"LINE_TOO_LONG\"")) << error;
  // Framing resumes at the next newline: the following request works.
  ASSERT_OK(client.SendLine(SpecRequest("after", kConsistentSpec)));
  ASSERT_OK_AND_ASSIGN(std::string verdict, client.ReadLine());
  EXPECT_TRUE(Contains(verdict, "\"id\":\"after\"")) << verdict;
  EXPECT_TRUE(Contains(verdict, "\"verdict\":\"CONSISTENT\"")) << verdict;
}

TEST_F(ServerTest, FullQueueShedsWithRetryableResponse) {
  // One deliberately slow worker and a one-slot queue: with several
  // requests in flight at once, at least one must be shed.
  StartServer(ServeOptions{.jobs = 1,
                           .queue_limit = 1,
                           .debug_handle_delay_millis = 150});
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_OK(client.SendLine(
        SpecRequest("b" + std::to_string(i), kConsistentSpec)));
  }
  client.FinishWriting();
  int verdicts = 0;
  int sheds = 0;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string response, client.ReadLine());
    if (Contains(response, "\"verdict\":")) {
      ++verdicts;
    } else {
      EXPECT_TRUE(Contains(response, "\"error\":\"RETRYABLE\"")) << response;
      EXPECT_TRUE(Contains(response, "\"retryable\":true")) << response;
      ++sheds;
    }
  }
  EXPECT_EQ(verdicts + sheds, kBurst);
  EXPECT_GE(sheds, 1);
  EXPECT_GE(verdicts, 1);  // admitted requests still complete
  server_->Shutdown();
  EXPECT_GE(stats_.Counter("serve/shed"), 1);
}

TEST_F(ServerTest, MaxRequestsStopsTheServer) {
  StartServer(ServeOptions{.jobs = 1, .max_requests = 2});
  RoundTrip(SpecRequest("m1", kConsistentSpec));
  RoundTrip(SpecRequest("m2", kConsistentSpec));
  server_->Wait();  // returns because the response budget is spent
  EXPECT_TRUE(server_->stopped());
  EXPECT_GE(server_->responses_sent(), 2);
}

TEST_F(ServerTest, ShutdownIsIdempotentAndUnblocksClients) {
  StartServer(ServeOptions{.jobs = 1});
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  std::thread stopper([this] { server_->Shutdown(); });
  server_->Shutdown();
  stopper.join();
  // The client observes EOF (kNotFound) rather than hanging.
  Result<std::string> response = client.ReadLine();
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace xmlverify
