// Hostile-connection hardening tests (docs/serving.md, "Connection
// hardening"): idle-timeout reclaim of silent connections, in-flight
// cancellation when a client dies mid-request, the connection cap,
// the enqueue-stamped client deadline, and the client-side retry
// policy. All tests are deterministic — every wait polls a condition
// with a bound derived from the configured timeouts, never a blind
// sleep longer than them.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/client.h"
#include "serve/server.h"
#include "tests/test_util.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

// A tiny consistent specification: x keys the a-children of r.
constexpr char kConsistentSpec[] =
    "root r\n"
    "<!ELEMENT r (a*)>\n"
    "<!ELEMENT a (%)>\n"
    "<!ATTLIST a x>\n"
    "%%\n"
    "r.a.x -> r.a\n";

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string SpecRequest(const std::string& id, const std::string& spec,
                        const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"spec\":\"" + JsonEscape(spec) + "\"" +
         extra + "}";
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class HardeningTest : public ::testing::Test {
 protected:
  void StartServer(ServeOptions options) {
    options.stats = &stats_;
    server_ = std::make_unique<ServeServer>(std::move(options));
    ASSERT_OK(server_->Start());
    ASSERT_GT(server_->port(), 0);
  }

  Result<ServeClient> Connect(ClientOptions options = ClientOptions()) {
    return ServeClient::Connect("127.0.0.1", server_->port(), options);
  }

  std::string RoundTrip(const std::string& request) {
    Result<ServeClient> client = Connect();
    EXPECT_TRUE(client.ok()) << client.status().message();
    EXPECT_TRUE(client->SendLine(request).ok());
    Result<std::string> response = client->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().message();
    return response.ok() ? *response : "";
  }

  /// Polls `predicate` every 5ms up to `limit_millis`.
  bool WaitFor(const std::function<bool()>& predicate, int limit_millis) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(limit_millis);
    while (!predicate()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }

  StatsRegistry stats_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(HardeningTest, IdleTimeoutReclaimsSilentConnection) {
  StartServer(ServeOptions{.jobs = 1, .idle_timeout_millis = 100});

  // Half a request, then silence: the classic slowloris posture.
  ASSERT_OK_AND_ASSIGN(ServeClient slow, Connect());
  ASSERT_OK(slow.SendRaw("{\"id\":\"never-fini"));

  // The server must reclaim the connection within the idle budget
  // (plus poll-slice slack), not hold a reader thread forever.
  EXPECT_TRUE(WaitFor([&] { return stats_.Counter("serve/idle_timeouts") >= 1; },
                      2000))
      << "idle timeout never fired";

  // The reclaimed connection is really closed: the client sees EOF.
  ASSERT_OK(slow.set_recv_timeout_millis(1000));
  Result<std::string> nothing = slow.ReadLine();
  EXPECT_FALSE(nothing.ok());

  // And the server still serves new clients.
  std::string response = RoundTrip(SpecRequest("after", kConsistentSpec));
  EXPECT_TRUE(Contains(response, "\"verdict\":\"CONSISTENT\"")) << response;
}

TEST_F(HardeningTest, ClientDeathCancelsQueuedWork) {
  // One worker with a deterministic handling delay: the first job
  // occupies it long enough for the second to be queued, aborted,
  // and observed as cancelled at pickup.
  StartServer(ServeOptions{.jobs = 1, .debug_handle_delay_millis = 150});

  ASSERT_OK_AND_ASSIGN(ServeClient busy, Connect());
  ASSERT_OK(busy.SendLine(SpecRequest("busy", kConsistentSpec)));

  // Queue a request from a client that then dies hard (RST, not a
  // clean half-close — half-close must keep responses flowing).
  ASSERT_OK_AND_ASSIGN(ServeClient doomed, Connect());
  ASSERT_OK(doomed.SendLine(SpecRequest("doomed", kConsistentSpec)));
  EXPECT_TRUE(WaitFor([&] { return stats_.Counter("serve/requests") >= 2; },
                      2000));
  doomed.Abort();

  // The worker must skip the dead job rather than solving into a
  // closed socket, and the first client still gets its answer.
  Result<std::string> busy_response = busy.ReadLine();
  ASSERT_TRUE(busy_response.ok()) << busy_response.status().message();
  EXPECT_TRUE(Contains(*busy_response, "\"verdict\":\"CONSISTENT\""));
  EXPECT_TRUE(WaitFor([&] { return stats_.Counter("serve/cancelled") >= 1; },
                      2000))
      << "cancelled job was not skipped";

  // Worker recovered: a fresh request round-trips.
  std::string response = RoundTrip(SpecRequest("after", kConsistentSpec));
  EXPECT_TRUE(Contains(response, "\"verdict\":\"CONSISTENT\"")) << response;
}

TEST_F(HardeningTest, ConnectionCapShedsWithRetryableResponse) {
  StartServer(ServeOptions{.jobs = 1, .max_connections = 1});

  // Occupy the single slot, and prove it is registered by completing
  // a round trip on it.
  ASSERT_OK_AND_ASSIGN(ServeClient holder, Connect());
  ASSERT_OK(holder.SendLine(SpecRequest("hold", kConsistentSpec)));
  ASSERT_OK_AND_ASSIGN(std::string held, holder.ReadLine());
  EXPECT_TRUE(Contains(held, "\"verdict\":\"CONSISTENT\"")) << held;

  // The next connection is shed at the door with the RETRYABLE
  // contract (the same one queue-full sheds use).
  ASSERT_OK_AND_ASSIGN(ServeClient rejected, Connect());
  ASSERT_OK(rejected.set_recv_timeout_millis(2000));
  ASSERT_OK_AND_ASSIGN(std::string shed, rejected.ReadLine());
  EXPECT_TRUE(Contains(shed, "\"error\":\"RETRYABLE\"")) << shed;
  EXPECT_TRUE(Contains(shed, "\"retryable\":true")) << shed;
  EXPECT_GE(stats_.Counter("serve/connections_rejected"), 1);

  // Releasing the slot re-opens the door.
  holder.Close();
  EXPECT_TRUE(WaitFor(
      [&] {
        Result<ServeClient> retry = Connect();
        if (!retry.ok()) return false;
        if (!retry->SendLine(SpecRequest("again", kConsistentSpec)).ok()) {
          return false;
        }
        if (!retry->set_recv_timeout_millis(2000).ok()) return false;
        Result<std::string> response = retry->ReadLine();
        return response.ok() &&
               Contains(*response, "\"verdict\":\"CONSISTENT\"");
      },
      3000))
      << "slot was never released";
}

TEST_F(HardeningTest, QueueWaitCountsAgainstClientTimeout) {
  // Regression for the enqueue-stamp fix: a request carrying its own
  // timeout_ms starts that clock at admission, so one that outwaits
  // its client in the queue is shed cheaply at pickup.
  StartServer(ServeOptions{.jobs = 1, .debug_handle_delay_millis = 200});

  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  // Pipelined on one connection: "front" occupies the worker through
  // the 200ms debug delay; "late" waits in the queue with a 100ms
  // client budget that expires long before pickup.
  ASSERT_OK(client.SendLine(SpecRequest("front", kConsistentSpec)));
  ASSERT_OK(client.SendLine(
      SpecRequest("late", kConsistentSpec, ",\"timeout_ms\":100")));

  ASSERT_OK_AND_ASSIGN(std::string front, client.ReadLine());
  EXPECT_TRUE(Contains(front, "\"id\":\"front\"")) << front;
  EXPECT_TRUE(Contains(front, "\"verdict\":\"CONSISTENT\"")) << front;

  ASSERT_OK_AND_ASSIGN(std::string late, client.ReadLine());
  EXPECT_TRUE(Contains(late, "\"id\":\"late\"")) << late;
  EXPECT_TRUE(Contains(late, "\"verdict\":\"DEADLINE_EXCEEDED\"")) << late;
  EXPECT_TRUE(Contains(late, "expired while queued")) << late;
  EXPECT_GE(stats_.Counter("serve/queue_expired"), 1);

  // The server ceiling is untouched: a request whose own budget has
  // not expired still gets a full solve (cache hit here, fine).
  ASSERT_OK(client.SendLine(
      SpecRequest("fresh", kConsistentSpec, ",\"timeout_ms\":5000")));
  ASSERT_OK_AND_ASSIGN(std::string fresh, client.ReadLine());
  EXPECT_TRUE(Contains(fresh, "\"verdict\":\"CONSISTENT\"")) << fresh;
}

TEST_F(HardeningTest, ClientRetryRecoversFromConnectionCapShed) {
  StartServer(ServeOptions{.jobs = 1, .max_connections = 1});

  // Count the client-side counters into the test's registry.
  TraceSession session(&stats_);

  ASSERT_OK_AND_ASSIGN(ServeClient holder, Connect());
  ASSERT_OK(holder.SendLine(SpecRequest("hold", kConsistentSpec)));
  ASSERT_OK_AND_ASSIGN(std::string held, holder.ReadLine());
  EXPECT_TRUE(Contains(held, "\"verdict\":\"CONSISTENT\"")) << held;

  // Release the slot shortly after the retrying client's first
  // attempt has been shed.
  std::thread releaser([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    holder.Close();
  });

  ClientOptions retry;
  retry.max_retries = 10;
  retry.base_backoff_millis = 20;
  retry.max_backoff_millis = 100;
  retry.jitter_seed = 7;
  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect(retry));
  ASSERT_OK(client.set_recv_timeout_millis(2000));
  Result<std::string> response =
      client.CallWithRetry(SpecRequest("retry", kConsistentSpec));
  releaser.join();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_TRUE(Contains(*response, "\"verdict\":\"CONSISTENT\"")) << *response;
  EXPECT_GE(stats_.Counter("serve_client/retries"), 1);
  EXPECT_GE(stats_.Counter("serve_client/retry_recovered"), 1);
}

TEST_F(HardeningTest, HalfCloseStillDrainsResponses) {
  // The cancellation machinery must not break the documented
  // half-close contract: EOF after the last request is NOT a dead
  // peer, and every queued response still flows.
  StartServer(ServeOptions{.jobs = 1, .debug_handle_delay_millis = 50});

  ASSERT_OK_AND_ASSIGN(ServeClient client, Connect());
  ASSERT_OK(client.SendLine(SpecRequest("p1", kConsistentSpec)));
  ASSERT_OK(client.SendLine(SpecRequest("p2", kConsistentSpec)));
  client.FinishWriting();

  ASSERT_OK_AND_ASSIGN(std::string first, client.ReadLine());
  ASSERT_OK_AND_ASSIGN(std::string second, client.ReadLine());
  EXPECT_TRUE(Contains(first + second, "\"id\":\"p1\""));
  EXPECT_TRUE(Contains(first + second, "\"id\":\"p2\""));
  EXPECT_EQ(stats_.Counter("serve/cancelled"), 0);
}

}  // namespace
}  // namespace xmlverify
