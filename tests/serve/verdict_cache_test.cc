// Cacheability policy and the two-tier lookup contract of the serve
// verdict cache. The invariant the serving docs promise: a
// non-definitive outcome is never stored, under any tier or key.
#include "serve/verdict_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/verdict.h"

namespace xmlverify {
namespace {

TEST(VerdictCacheTest, CacheablePolicy) {
  EXPECT_TRUE(VerdictCache::Cacheable(ConsistencyOutcome::kConsistent));
  EXPECT_TRUE(VerdictCache::Cacheable(ConsistencyOutcome::kInconsistent));
  EXPECT_FALSE(VerdictCache::Cacheable(ConsistencyOutcome::kUnknown));
  EXPECT_FALSE(VerdictCache::Cacheable(ConsistencyOutcome::kDeadlineExceeded));
  EXPECT_FALSE(
      VerdictCache::Cacheable(ConsistencyOutcome::kResourceExhausted));
}

TEST(VerdictCacheTest, DefinitiveVerdictHitsBothTiers) {
  VerdictCache cache;
  auto inserted =
      cache.Insert("canonical-text", "raw-text", "fp01",
                   ConsistencyOutcome::kConsistent, "note", "<r/>");
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(inserted->fingerprint, "fp01");
  EXPECT_EQ(inserted->witness_xml, "<r/>");

  auto raw_hit = cache.LookupRaw("raw-text");
  ASSERT_NE(raw_hit, nullptr);
  EXPECT_EQ(raw_hit->outcome, ConsistencyOutcome::kConsistent);
  EXPECT_EQ(raw_hit->note, "note");

  auto canonical_hit = cache.LookupCanonical("canonical-text", "raw-text");
  ASSERT_NE(canonical_hit, nullptr);
  EXPECT_EQ(canonical_hit->fingerprint, "fp01");

  EXPECT_EQ(cache.LookupRaw("other-raw"), nullptr);
  EXPECT_EQ(cache.LookupCanonical("other-canonical", "other-raw"), nullptr);
}

TEST(VerdictCacheTest, NonDefinitiveOutcomesAreNeverStored) {
  VerdictCache cache;
  for (ConsistencyOutcome outcome :
       {ConsistencyOutcome::kUnknown, ConsistencyOutcome::kDeadlineExceeded,
        ConsistencyOutcome::kResourceExhausted}) {
    SCOPED_TRACE(OutcomeName(outcome));
    EXPECT_EQ(cache.Insert("canonical", "raw", "fp", outcome, "n", ""),
              nullptr);
    EXPECT_EQ(cache.LookupRaw("raw"), nullptr);
    EXPECT_EQ(cache.LookupCanonical("canonical", "raw"), nullptr);
    EXPECT_EQ(cache.size(), 0u);
  }
}

TEST(VerdictCacheTest, CanonicalHitBackFillsRawTier) {
  VerdictCache cache;
  ASSERT_NE(cache.Insert("canonical", "spelling-one", "fp",
                         ConsistencyOutcome::kInconsistent, "n", ""),
            nullptr);
  // A second, syntactically different spelling misses the raw tier...
  EXPECT_EQ(cache.LookupRaw("spelling-two"), nullptr);
  // ...hits the canonical tier (back-filling the raw tier)...
  ASSERT_NE(cache.LookupCanonical("canonical", "spelling-two"), nullptr);
  // ...so the next identical request short-circuits on the raw tier.
  auto raw_hit = cache.LookupRaw("spelling-two");
  ASSERT_NE(raw_hit, nullptr);
  EXPECT_EQ(raw_hit->outcome, ConsistencyOutcome::kInconsistent);
}

TEST(VerdictCacheTest, WitnessStoredOnlyForConsistent) {
  VerdictCache cache;
  auto inconsistent =
      cache.Insert("c1", "r1", "fp1", ConsistencyOutcome::kInconsistent,
                   "core", "<bogus/>");
  ASSERT_NE(inconsistent, nullptr);
  EXPECT_EQ(inconsistent->witness_xml, "");

  auto consistent = cache.Insert(
      "c2", "r2", "fp2", ConsistencyOutcome::kConsistent, "ok", "<r/>");
  ASSERT_NE(consistent, nullptr);
  EXPECT_EQ(consistent->witness_xml, "<r/>");
}

TEST(VerdictCacheTest, AttachCoreEnrichesBothTiers) {
  VerdictCache cache;
  ASSERT_NE(cache.Insert("canonical", "raw", "fp",
                         ConsistencyOutcome::kInconsistent, "n", ""),
            nullptr);
  EXPECT_EQ(cache.LookupRaw("raw")->core_text, "");

  auto enriched = cache.AttachCore("canonical", "raw", "a.v -> a\n");
  ASSERT_NE(enriched, nullptr);
  EXPECT_EQ(enriched->core_text, "a.v -> a\n");
  // Both tiers serve the core from now on; the rest of the entry is
  // untouched.
  EXPECT_EQ(cache.LookupRaw("raw")->core_text, "a.v -> a\n");
  EXPECT_EQ(cache.LookupCanonical("canonical", "raw")->core_text,
            "a.v -> a\n");
  EXPECT_EQ(cache.LookupRaw("raw")->note, "n");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerdictCacheTest, AttachCoreRefusesMissingAndConsistentEntries) {
  VerdictCache cache;
  // Missing entry: nothing to enrich.
  EXPECT_EQ(cache.AttachCore("absent", "absent-raw", "core"), nullptr);
  // CONSISTENT entry: cores are an INCONSISTENT-only concept; the
  // cache enforces the invariant rather than trusting callers.
  ASSERT_NE(cache.Insert("c", "r", "fp", ConsistencyOutcome::kConsistent,
                         "ok", "<r/>"),
            nullptr);
  EXPECT_EQ(cache.AttachCore("c", "r", "core"), nullptr);
  EXPECT_EQ(cache.LookupRaw("r")->core_text, "");
  EXPECT_EQ(cache.LookupRaw("r")->witness_xml, "<r/>");
}

TEST(VerdictCacheTest, FirstWriterWins) {
  VerdictCache cache;
  auto first = cache.Insert("c", "r", "fp", ConsistencyOutcome::kConsistent,
                            "first", "<a/>");
  auto second = cache.Insert("c", "r", "fp", ConsistencyOutcome::kConsistent,
                             "second", "<b/>");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(cache.LookupRaw("r")->note, first->note);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace xmlverify
