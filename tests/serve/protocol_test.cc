// Wire-protocol framing: every malformed line maps to a structured
// kInvalidArgument, never a crash, and the serializers emit the three
// documented response shapes exactly.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "core/verdict.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

ServeRequest MustParse(const std::string& line) {
  Result<ServeRequest> parsed = ParseServeRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return *parsed;
}

void ExpectRejected(const std::string& line, const std::string& why) {
  Result<ServeRequest> parsed = ParseServeRequest(line);
  EXPECT_FALSE(parsed.ok()) << "accepted " << why << ": " << line;
  if (!parsed.ok()) {
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << why;
  }
}

TEST(ProtocolTest, ParsesMinimalSpecRequest) {
  ServeRequest request = MustParse(R"({"id":"r1","spec":"root r"})");
  EXPECT_EQ(request.id, "r1");
  EXPECT_TRUE(request.has_spec);
  EXPECT_FALSE(request.has_pair);
  EXPECT_EQ(request.spec_text, "root r");
  EXPECT_EQ(request.timeout_millis, 0);
  EXPECT_FALSE(request.want_witness);
}

TEST(ProtocolTest, ParsesPairFormWithOptions) {
  ServeRequest request = MustParse(
      R"({"id":"x","dtd":"<!ELEMENT r (%)>","constraints":"","timeout_ms":2500,"witness":true})");
  EXPECT_TRUE(request.has_pair);
  EXPECT_FALSE(request.has_spec);
  EXPECT_EQ(request.dtd_text, "<!ELEMENT r (%)>");
  EXPECT_EQ(request.constraints_text, "");
  EXPECT_EQ(request.timeout_millis, 2500);
  EXPECT_TRUE(request.want_witness);
}

TEST(ProtocolTest, DecodesJsonEscapesAndSurrogatePairs) {
  ServeRequest request = MustParse(
      "{\"id\":\"e\",\"spec\":\"a\\n\\tb \\\\ \\\" \\u0041 \\ud83d\\ude00\"}");
  EXPECT_EQ(request.spec_text,
            "a\n\tb \\ \" A \xF0\x9F\x98\x80");
}

TEST(ProtocolTest, RejectsMalformedLines) {
  ExpectRejected("", "empty line");
  ExpectRejected("not json", "non-JSON");
  ExpectRejected("{\"id\":\"a\",\"spec\":\"s\"", "unterminated object");
  ExpectRejected("[1,2]", "non-object root");
  ExpectRejected("\"just a string\"", "string root");
  ExpectRejected(R"({"id":"a","spec":"s"} trailing)", "trailing garbage");
  ExpectRejected(R"({"id":"a","spec":"s","spec":"t"})", "duplicate key");
  ExpectRejected("{\"id\":\"a\",\"spec\":\"bad \\u12 escape\"}",
                 "truncated unicode escape");
  ExpectRejected("{\"id\":\"a\",\"spec\":\"lone \\ud800 surrogate\"}",
                 "unpaired surrogate");
}

TEST(ProtocolTest, RejectsUnknownAndMistypedFields) {
  ExpectRejected(R"({"id":"a","spec":"s","timeout_millis":5})",
                 "unknown field (common typo)");
  ExpectRejected(R"({"id":"a","spec":"s","extra":1})", "unknown field");
  ExpectRejected(R"({"id":7,"spec":"s"})", "non-string id");
  ExpectRejected(R"({"id":"a","spec":17})", "non-string spec");
  ExpectRejected(R"({"id":"a","spec":"s","timeout_ms":"5"})",
                 "string timeout");
  ExpectRejected(R"({"id":"a","spec":"s","timeout_ms":2.5})",
                 "fractional timeout");
  ExpectRejected(R"({"id":"a","spec":"s","timeout_ms":-1})",
                 "negative timeout");
  ExpectRejected(R"({"id":"a","spec":"s","witness":"yes"})",
                 "non-boolean witness");
}

TEST(ProtocolTest, RejectsMissingOrConflictingFields) {
  ExpectRejected(R"({"spec":"s"})", "missing id");
  ExpectRejected(R"({"id":"","spec":"s"})", "empty id");
  ExpectRejected(R"({"id":"a"})", "no spec form");
  ExpectRejected(R"({"id":"a","dtd":"d"})", "dtd without constraints");
  ExpectRejected(R"({"id":"a","constraints":"c"})",
                 "constraints without dtd");
  ExpectRejected(R"({"id":"a","spec":"s","dtd":"d","constraints":"c"})",
                 "both spec forms");
}

TEST(ProtocolTest, RejectsPathologicalNesting) {
  std::string deep = R"({"id":"a","spec":)";
  for (int i = 0; i < 80; ++i) deep += "[";
  for (int i = 0; i < 80; ++i) deep += "]";
  deep += "}";
  ExpectRejected(deep, "deep nesting");
}

TEST(ProtocolTest, RecoverRequestIdIsBestEffort) {
  EXPECT_EQ(RecoverRequestId(R"({"id":"r9","spec":17})"), "r9");
  EXPECT_EQ(RecoverRequestId(R"({"spec":"s","id":"later"})"), "later");
  EXPECT_EQ(RecoverRequestId("complete garbage"), "");
  EXPECT_EQ(RecoverRequestId(R"({"id":42})"), "");
}

TEST(ProtocolTest, FormatsVerdictResponses) {
  std::string line = FormatVerdictResponse(
      "r1", ConsistencyOutcome::kConsistent, "note", "abc123", false,
      "<r/>", /*include_witness=*/true);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"id\":\"r1\""), std::string::npos);
  EXPECT_NE(line.find("\"verdict\":\"CONSISTENT\""), std::string::npos);
  EXPECT_NE(line.find("\"cached\":false"), std::string::npos);
  EXPECT_NE(line.find("\"fingerprint\":\"abc123\""), std::string::npos);
  EXPECT_NE(line.find("\"witness\":"), std::string::npos);
  // Single line: the embedded newline in notes must be escaped.
  EXPECT_EQ(line.find('\n'), line.size() - 1);

  std::string no_witness = FormatVerdictResponse(
      "r2", ConsistencyOutcome::kInconsistent, "a\nb", "ff", true, "<r/>",
      /*include_witness=*/false);
  EXPECT_EQ(no_witness.find("witness"), std::string::npos);
  EXPECT_NE(no_witness.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(no_witness.find('\n'), no_witness.size() - 1);
}

TEST(ProtocolTest, ParsesCoreFlag) {
  ServeRequest request =
      MustParse(R"({"id":"r1","spec":"root r","core":true})");
  EXPECT_TRUE(request.want_core);
  EXPECT_FALSE(MustParse(R"({"id":"r2","spec":"root r"})").want_core);
  EXPECT_FALSE(
      MustParse(R"({"id":"r3","spec":"root r","core":false})").want_core);
  ExpectRejected(R"({"id":"r4","spec":"root r","core":"yes"})",
                 "non-boolean core");
}

TEST(ProtocolTest, CoreEmittedOnlyForInconsistentWhenRequested) {
  // Requested and INCONSISTENT: the core rides along.
  std::string line = FormatVerdictResponse(
      "r1", ConsistencyOutcome::kInconsistent, "n", "fp", true, "",
      /*include_witness=*/false, "a.v -> a\nfk a.v <= b.v\n",
      /*include_core=*/true);
  EXPECT_NE(line.find("\"core\":\"a.v -> a\\nfk a.v <= b.v\\n\""),
            std::string::npos);
  EXPECT_EQ(line.find('\n'), line.size() - 1);

  // Not requested: no core member even when the text is available.
  EXPECT_EQ(FormatVerdictResponse("r2", ConsistencyOutcome::kInconsistent,
                                  "n", "fp", true, "", false, "a.v -> a\n",
                                  /*include_core=*/false)
                .find("\"core\""),
            std::string::npos);
  // CONSISTENT: cores never apply, regardless of the request.
  EXPECT_EQ(FormatVerdictResponse("r3", ConsistencyOutcome::kConsistent,
                                  "n", "fp", false, "<r/>", true,
                                  "a.v -> a\n", /*include_core=*/true)
                .find("\"core\""),
            std::string::npos);
  // Requested but not (yet) computed: omitted rather than empty.
  EXPECT_EQ(FormatVerdictResponse("r4", ConsistencyOutcome::kInconsistent,
                                  "n", "fp", false, "", false, "",
                                  /*include_core=*/true)
                .find("\"core\""),
            std::string::npos);
}

TEST(ProtocolTest, FormatsErrorResponses) {
  std::string shed = FormatErrorResponse("r7", "RETRYABLE", "queue full",
                                         /*retryable=*/true);
  EXPECT_NE(shed.find("\"error\":\"RETRYABLE\""), std::string::npos);
  EXPECT_NE(shed.find("\"retryable\":true"), std::string::npos);
  EXPECT_EQ(shed.back(), '\n');

  std::string invalid = FormatErrorResponse("", "INVALID_REQUEST",
                                            "quote \" here",
                                            /*retryable=*/false);
  EXPECT_NE(invalid.find("\"id\":\"\""), std::string::npos);
  EXPECT_NE(invalid.find("\"retryable\":false"), std::string::npos);
  // Round-trip safety of the quoted message.
  EXPECT_NE(invalid.find("quote \\\" here"), std::string::npos);
}

// A formatted response must itself parse as a JSON object — the
// parser and serializers agree on the dialect. (Responses are not
// requests, so full ParseServeRequest acceptance is not expected;
// we only check the id survives the round trip.)
TEST(ProtocolTest, ResponsesCarryRecoverableIds) {
  EXPECT_EQ(RecoverRequestId(FormatVerdictResponse(
                "rt", ConsistencyOutcome::kUnknown, "n", "fp", false, "",
                false)),
            "rt");
  EXPECT_EQ(RecoverRequestId(FormatErrorResponse("er", "X", "m", false)),
            "er");
}

}  // namespace
}  // namespace xmlverify
