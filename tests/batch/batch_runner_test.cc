// Batch verification driver: manifest parsing, manifest-order results
// across thread counts, per-check deadlines, shared cache counters,
// and the `xmlvc --batch` CLI end to end.
#include "batch/batch_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "encoding/cardinality.h"
#include "regex/automaton.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

// The paper's school spec (consistent) and a key-starved variant
// (inconsistent), as combined .xvc text.
constexpr char kConsistentSpec[] = R"(
<!ELEMENT school (student, student, course)>
<!ATTLIST student sid>
<!ATTLIST course cid>
%%
student.sid -> student
fk student.sid <= student.sid
)";

constexpr char kInconsistentSpec[] = R"(
<!ELEMENT school (student, student, course)>
<!ATTLIST student sid>
<!ATTLIST course cid>
%%
student.sid -> student
fk student.sid <= course.cid
)";

std::string WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return path;
}

class BatchRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each test case as its own process, concurrently; a
    // per-test directory keeps their spec files from racing.
    dir_ = ::testing::TempDir() + "/" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    good_ = WriteFile(dir_ + "/good.xvc", kConsistentSpec);
    bad_ = WriteFile(dir_ + "/bad.xvc", kInconsistentSpec);
  }
  std::string dir_, good_, bad_;
};

TEST_F(BatchRunnerTest, ManifestParsesCommentsPairsAndRelativePaths) {
  ASSERT_OK_AND_ASSIGN(std::vector<BatchEntry> entries,
                       ParseBatchManifest("# header comment\n"
                                          "\n"
                                          "good.xvc\n"
                                          "  spec.dtd spec.constraints  \n"
                                          "/abs/path.xvc\n",
                                          "/base"));
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].dtd_path, "/base/good.xvc");
  EXPECT_TRUE(entries[0].constraints_path.empty());
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[1].dtd_path, "/base/spec.dtd");
  EXPECT_EQ(entries[1].constraints_path, "/base/spec.constraints");
  EXPECT_EQ(entries[2].dtd_path, "/abs/path.xvc");  // absolute: untouched

  EXPECT_FALSE(ParseBatchManifest("a b c\n", "").ok());  // three fields
}

TEST_F(BatchRunnerTest, ManifestToleratesCrlfLineEndings) {
  // A manifest written on Windows: CRLF line endings, blank lines and
  // comments with trailing \r. The \r must never leak into a path.
  ASSERT_OK_AND_ASSIGN(std::vector<BatchEntry> entries,
                       ParseBatchManifest("# comment\r\n"
                                          "\r\n"
                                          "good.xvc\r\n"
                                          "spec.dtd spec.constraints\r\n",
                                          "/base"));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].dtd_path, "/base/good.xvc");
  EXPECT_EQ(entries[1].dtd_path, "/base/spec.dtd");
  EXPECT_EQ(entries[1].constraints_path, "/base/spec.constraints");
  for (const BatchEntry& entry : entries) {
    EXPECT_EQ(entry.dtd_path.find('\r'), std::string::npos);
    EXPECT_EQ(entry.constraints_path.find('\r'), std::string::npos);
  }
}

TEST_F(BatchRunnerTest, RetryRecoversFromATransientInjectedFault) {
  // The first manifest read fails (injected); with one retry allowed
  // the item is re-attempted with a grown budget and succeeds.
  ASSERT_OK(FaultInjector::Arm("manifest_io=1"));
  std::vector<BatchEntry> entries(1);
  entries[0].dtd_path = good_;
  entries[0].line = 1;
  BatchOptions options;
  options.jobs = 1;
  options.retries = 1;
  BatchResult result = RunBatch(entries, options);
  FaultInjector::Disarm();
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_OK(result.items[0].status);
  EXPECT_EQ(result.items[0].verdict.outcome, ConsistencyOutcome::kConsistent);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.retries, 1);
  EXPECT_EQ(result.retry_recovered, 1);
}

TEST_F(BatchRunnerTest, WithoutRetriesAnInjectedFaultStaysAFailure) {
  ASSERT_OK(FaultInjector::Arm("manifest_io=1"));
  std::vector<BatchEntry> entries(1);
  entries[0].dtd_path = good_;
  entries[0].line = 1;
  BatchOptions options;
  options.jobs = 1;
  BatchResult result = RunBatch(entries, options);
  FaultInjector::Disarm();
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.retries, 0);
}

TEST_F(BatchRunnerTest, DefinitiveVerdictsAreNeverRetried) {
  // An inconsistent spec is a real answer: retries must not re-run it.
  std::vector<BatchEntry> entries(1);
  entries[0].dtd_path = bad_;
  entries[0].line = 1;
  BatchOptions options;
  options.jobs = 1;
  options.retries = 3;
  BatchResult result = RunBatch(entries, options);
  EXPECT_EQ(result.inconsistent, 1);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.retry_recovered, 0);
}

TEST_F(BatchRunnerTest, ResultsLandInManifestOrderForEveryJobCount) {
  // Alternating verdicts make order mistakes visible.
  std::vector<BatchEntry> entries;
  for (int i = 0; i < 12; ++i) {
    BatchEntry entry;
    entry.dtd_path = (i % 2 == 0) ? good_ : bad_;
    entry.line = i + 1;
    entries.push_back(entry);
  }
  for (int jobs : {1, 4, 8}) {
    BatchOptions options;
    options.jobs = jobs;
    BatchResult result = RunBatch(entries, options);
    ASSERT_EQ(result.items.size(), 12u) << "jobs=" << jobs;
    for (int i = 0; i < 12; ++i) {
      ASSERT_OK(result.items[i].status);
      EXPECT_EQ(result.items[i].verdict.outcome,
                (i % 2 == 0) ? ConsistencyOutcome::kConsistent
                             : ConsistencyOutcome::kInconsistent)
          << "jobs=" << jobs << " index=" << i;
    }
    EXPECT_EQ(result.consistent, 6);
    EXPECT_EQ(result.inconsistent, 6);
    EXPECT_EQ(result.errors, 0);
  }
}

TEST_F(BatchRunnerTest, MissingFileIsAnItemErrorNotABatchFailure) {
  std::vector<BatchEntry> entries(2);
  entries[0].dtd_path = good_;
  entries[0].line = 1;
  entries[1].dtd_path = dir_ + "/does_not_exist.xvc";
  entries[1].line = 2;
  BatchResult result = RunBatch(entries, BatchOptions());
  ASSERT_EQ(result.items.size(), 2u);
  EXPECT_OK(result.items[0].status);
  EXPECT_FALSE(result.items[1].status.ok());
  EXPECT_NE(result.items[1].status.message().find("line 2"),
            std::string::npos);
  EXPECT_EQ(result.errors, 1);
  EXPECT_EQ(result.consistent, 1);
}

TEST_F(BatchRunnerTest, SharedRegistryAggregatesCacheCounters) {
  // Twelve copies of the same spec: after the first check warms the
  // process-wide caches, the rest must hit. Clear both caches first so
  // earlier tests in this process don't mask the misses.
  GlobalDfaCache().Clear();
  GlobalCardinalityPlanCache().Clear();
  std::vector<BatchEntry> entries(12);
  for (int i = 0; i < 12; ++i) {
    entries[i].dtd_path = good_;
    entries[i].line = i + 1;
  }
  StatsRegistry registry;
  BatchOptions options;
  options.jobs = 4;
  options.stats = &registry;
  BatchResult result = RunBatch(entries, options);
  EXPECT_EQ(result.consistent, 12);
  EXPECT_EQ(registry.Counter("batch/specs_checked"), 12);
  EXPECT_GT(registry.Counter("cache/cardinality_hits"), 0);
  EXPECT_GT(registry.Counter("cache/cardinality_misses"), 0);
}

TEST_F(BatchRunnerTest, PerCheckDeadlineYieldsDeadlineVerdict) {
  // An (effectively) zero budget: every check must come back as
  // kDeadlineExceeded, and the batch aggregate must say so.
  std::vector<BatchEntry> entries(3);
  for (int i = 0; i < 3; ++i) {
    entries[i].dtd_path = (i == 1) ? bad_ : good_;
    entries[i].line = i + 1;
  }
  BatchOptions options;
  options.jobs = 2;
  options.timeout_millis = 1;
  // Deadline::AfterMillis(1) may legitimately survive a fast check;
  // retry logic would race the clock. Instead rely on the checks
  // being slower than 0ms only when the budget is truly 0 — assert
  // the weaker, stable property: no hang, no error, every outcome is
  // a legal verdict, and the aggregate counts line up.
  BatchResult result = RunBatch(entries, options);
  int counted = result.consistent + result.inconsistent + result.unknown +
                result.deadline_exceeded;
  EXPECT_EQ(counted, 3);
  EXPECT_EQ(result.errors, 0);
}

// ---------------------------------------------------------------------------
// CLI integration: `xmlvc --batch` end to end.

#if defined(XMLVC_BINARY_PATH)

std::string RunAndCapture(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  size_t read;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, read);
  }
  *exit_code = pclose(pipe);
  return output;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST_F(BatchRunnerTest, CliBatchEmitsOneVerdictLinePerSpecInOrder) {
  std::string manifest = WriteFile(dir_ + "/manifest.txt",
                                   "good.xvc\nbad.xvc\ngood.xvc\n");
  for (const std::string jobs : {"--jobs=1", "--jobs=8"}) {
    int exit_code = 0;
    std::string output = RunAndCapture(std::string(XMLVC_BINARY_PATH) +
                                           " --batch " + manifest + " " +
                                           jobs + " 2>/dev/null",
                                       &exit_code);
    // Worst verdict in the batch is INCONSISTENT -> exit 1.
    EXPECT_EQ(WEXITSTATUS(exit_code), 1) << output;
    std::vector<std::string> lines = Lines(output);
    ASSERT_GE(lines.size(), 4u) << output;
    EXPECT_NE(lines[0].find("good.xvc: CONSISTENT"), std::string::npos)
        << output;
    EXPECT_NE(lines[1].find("bad.xvc: INCONSISTENT"), std::string::npos)
        << output;
    EXPECT_NE(lines[2].find("good.xvc: CONSISTENT"), std::string::npos)
        << output;
    EXPECT_NE(lines[3].find("# checked 3 spec(s)"), std::string::npos)
        << output;
  }
}

TEST_F(BatchRunnerTest, CliBatchStatsReportsCacheCounters) {
  // Repeated specs: the shared caches must register hits, visible in
  // the --stats report.
  std::string manifest = WriteFile(
      dir_ + "/manifest_repeat.txt",
      "good.xvc\ngood.xvc\ngood.xvc\ngood.xvc\n");
  int exit_code = 0;
  std::string output = RunAndCapture(std::string(XMLVC_BINARY_PATH) +
                                         " --batch " + manifest +
                                         " --jobs=4 --stats 2>/dev/null",
                                     &exit_code);
  EXPECT_EQ(WEXITSTATUS(exit_code), 0) << output;
  EXPECT_NE(output.find("\"batch/specs_checked\": 4"), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"cache/cardinality_hits\""), std::string::npos)
      << output;
}

TEST_F(BatchRunnerTest, CliBatchRetriesRecoverFromInjectedFault) {
  // The acceptance demo: a transient injected failure on the first
  // read, recovered by --retries, ends in a clean exit 0 with the
  // retry accounting in the summary.
  std::string manifest =
      WriteFile(dir_ + "/manifest_retry.txt", "good.xvc\n");
  int exit_code = 0;
  std::string output = RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " --batch " + manifest +
          " --jobs=1 --retries=2 --fault-inject=manifest_io=1 2>/dev/null",
      &exit_code);
  EXPECT_EQ(WEXITSTATUS(exit_code), 0) << output;
  EXPECT_NE(output.find("good.xvc: CONSISTENT"), std::string::npos) << output;
  EXPECT_NE(output.find("retry attempt(s)"), std::string::npos) << output;
  EXPECT_NE(output.find("1 item(s) recovered"), std::string::npos) << output;

  // The same injected fault without retries is a hard item error.
  output = RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " --batch " + manifest +
          " --jobs=1 --fault-inject=manifest_io=1 2>/dev/null",
      &exit_code);
  EXPECT_EQ(WEXITSTATUS(exit_code), 2) << output;
  EXPECT_NE(output.find("ERROR"), std::string::npos) << output;
}

TEST_F(BatchRunnerTest, CliBatchMissingManifestExitsWithUsageError) {
  int exit_code = 0;
  RunAndCapture(std::string(XMLVC_BINARY_PATH) + " --batch " + dir_ +
                    "/absent_manifest.txt 2>/dev/null",
                &exit_code);
  EXPECT_EQ(WEXITSTATUS(exit_code), 2);
}

#endif  // XMLVC_BINARY_PATH

}  // namespace
}  // namespace xmlverify
