// Theorem 3.1 cross-validation: PDE instances solved directly agree
// with the consistency of their SAT(AC^{*,1}_{PK,FK}) reductions.
#include "reductions/pde_reduction.h"

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

PdeSystem LinearSystem() {
  // x0 + 2 x1 <= 5, x0 + x1 >= 3.
  PdeSystem system;
  system.num_variables = 2;
  system.rows.push_back({{1, 2}, true, 5});
  system.rows.push_back({{1, 1}, false, 3});
  return system;
}

TEST(PdeTest, DirectSolveLinear) {
  ASSERT_OK_AND_ASSIGN(SolveResult result, SolvePde(LinearSystem()));
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
}

TEST(PdeTest, DirectSolveInfeasible) {
  // x0 >= 4 and x0 <= 2 (expressed with two rows).
  PdeSystem system;
  system.num_variables = 1;
  system.rows.push_back({{1}, false, 4});
  system.rows.push_back({{1}, true, 2});
  ASSERT_OK_AND_ASSIGN(SolveResult result, SolvePde(system));
  EXPECT_EQ(result.outcome, SolveOutcome::kUnsat);
}

TEST(PdeTest, DirectSolvePrequadratic) {
  // x0 >= 9, x0 <= 10, x0 <= x1 * x1, x1 <= 3  ->  x0 in {9,10}? x1=3
  // gives x1*x1 = 9, so x0 = 9.
  PdeSystem system;
  system.num_variables = 2;
  system.rows.push_back({{1, 0}, false, 9});
  system.rows.push_back({{1, 0}, true, 10});
  system.rows.push_back({{0, 1}, true, 3});
  system.prequadratics.push_back({0, 1, 1});
  ASSERT_OK_AND_ASSIGN(SolveResult result, SolvePde(system));
  ASSERT_EQ(result.outcome, SolveOutcome::kSat);
  EXPECT_EQ(result.assignment[0], BigInt(9));
  EXPECT_EQ(result.assignment[1], BigInt(3));
}

TEST(PdeTest, ReductionYieldsPrimaryMultiAttrClass) {
  PdeSystem system = LinearSystem();
  system.prequadratics.push_back({0, 1, 1});
  ASSERT_OK_AND_ASSIGN(Specification spec, PdeToSpec(system));
  EXPECT_TRUE(spec.constraints.AbsoluteKeysPrimary());
  EXPECT_TRUE(spec.constraints.AbsoluteInclusionsUnary());
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcMultiPrimary);
}

struct PdeCase {
  PdeSystem system;
  bool expect_sat;
  const char* label;
};

PdeCase MakeCase(std::vector<PdeSystem::LinearRow> rows,
                 std::vector<PdeSystem::Prequadratic> prequadratics,
                 int num_variables, bool expect_sat, const char* label) {
  PdeCase c;
  c.system.num_variables = num_variables;
  c.system.rows = std::move(rows);
  c.system.prequadratics = std::move(prequadratics);
  c.expect_sat = expect_sat;
  c.label = label;
  return c;
}

class PdeReductionSweep : public ::testing::TestWithParam<PdeCase> {};

TEST_P(PdeReductionSweep, ReductionMatchesDirectSolve) {
  const PdeCase& param = GetParam();
  ASSERT_OK_AND_ASSIGN(SolveResult direct, SolvePde(param.system));
  ASSERT_NE(direct.outcome, SolveOutcome::kUnknown);
  EXPECT_EQ(direct.outcome == SolveOutcome::kSat, param.expect_sat)
      << param.label;

  ASSERT_OK_AND_ASSIGN(Specification spec, PdeToSpec(param.system));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, param.expect_sat
                                 ? ConsistencyOutcome::kConsistent
                                 : ConsistencyOutcome::kInconsistent)
      << param.label << ": " << verdict.note;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PdeReductionSweep,
    ::testing::Values(
        // x0 >= 2, x0 <= 4: SAT.
        MakeCase({{{1}, false, 2}, {{1}, true, 4}}, {}, 1, true, "interval"),
        // x0 >= 4, x0 <= 2: UNSAT.
        MakeCase({{{1}, false, 4}, {{1}, true, 2}}, {}, 1, false,
                 "empty-interval"),
        // x0 + x1 >= 2, x0 + x1 <= 3: SAT.
        MakeCase({{{1, 1}, false, 2}, {{1, 1}, true, 3}}, {}, 2, true,
                 "band"),
        // x0 >= 4, x0 <= x1*x1, x1 <= 2: SAT (x1 = 2, x0 = 4).
        MakeCase({{{1, 0}, false, 4}, {{0, 1}, true, 2}}, {{0, 1, 1}}, 2,
                 true, "square-fits"),
        // x0 >= 5, x0 <= x1*x1, x1 <= 2: UNSAT (4 < 5).
        MakeCase({{{1, 0}, false, 5}, {{0, 1}, true, 2}}, {{0, 1, 1}}, 2,
                 false, "square-too-small"),
        // x0 >= 6, x0 <= x1*x2, x1 <= 2, x2 <= 3: SAT (2*3 = 6).
        MakeCase({{{1, 0, 0}, false, 6},
                  {{0, 1, 0}, true, 2},
                  {{0, 0, 1}, true, 3}},
                 {{0, 1, 2}}, 3, true, "product-exact"),
        // x0 >= 7, x0 <= x1*x2, x1 <= 2, x2 <= 3: UNSAT.
        MakeCase({{{1, 0, 0}, false, 7},
                  {{0, 1, 0}, true, 2},
                  {{0, 0, 1}, true, 3}},
                 {{0, 1, 2}}, 3, false, "product-overflows")));

TEST(PdeTest, ValidationRejectsDegenerateRows) {
  PdeSystem bad;
  bad.num_variables = 1;
  bad.rows.push_back({{0}, true, 3});
  EXPECT_FALSE(SolvePde(bad).ok());
  PdeSystem negative;
  negative.num_variables = 1;
  negative.rows.push_back({{-1}, true, 3});
  EXPECT_FALSE(PdeToSpec(negative).ok());
}

}  // namespace
}  // namespace xmlverify
