// Cross-validation of the paper's hardness reductions against direct
// oracles: for every generated instance, the consistency verdict must
// coincide with the source problem's answer.
#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/sat_bounded.h"
#include "core/sat_hierarchical.h"
#include "reductions/cnf.h"
#include "reductions/cnf_depth2.h"
#include "reductions/qbf.h"
#include "reductions/qbf_hrc.h"
#include "reductions/qbf_regular.h"
#include "reductions/subset_sum.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(CnfTest, DpllAgreesWithExhaustiveSearch) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CnfFormula formula = CnfFormula::Random(4, 6 + seed % 5, 3, seed);
    bool exhaustive = false;
    for (int bits = 0; bits < 16 && !exhaustive; ++bits) {
      std::vector<bool> assignment(4);
      for (int v = 0; v < 4; ++v) assignment[v] = (bits >> v) & 1;
      exhaustive = formula.Evaluate(assignment);
    }
    std::optional<std::vector<bool>> model = formula.Solve();
    EXPECT_EQ(model.has_value(), exhaustive) << formula.ToString();
    if (model.has_value()) {
      EXPECT_TRUE(formula.Evaluate(*model));
    }
  }
}

TEST(CnfDepth2Test, FixedInstances) {
  // (x1 | !x2) & (!x1 | x2): satisfiable.
  CnfFormula sat;
  sat.num_variables = 2;
  sat.clauses = {{1, -2}, {-1, 2}};
  ASSERT_OK_AND_ASSIGN(Specification spec, CnfToDepth2Spec(sat));
  ASSERT_OK_AND_ASSIGN(int depth, spec.dtd.Depth());
  EXPECT_EQ(depth, 2);
  EXPECT_TRUE(spec.dtd.IsNoStar());
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, ConsistencyOutcome::kConsistent);

  // x1 & !x1: unsatisfiable.
  CnfFormula unsat;
  unsat.num_variables = 1;
  unsat.clauses = {{1}, {-1}};
  ASSERT_OK_AND_ASSIGN(Specification spec2, CnfToDepth2Spec(unsat));
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict2, checker.Check(spec2));
  EXPECT_EQ(verdict2.outcome, ConsistencyOutcome::kInconsistent);
}

class CnfDepth2Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CnfDepth2Sweep, VerdictMatchesDpll) {
  CnfFormula formula = CnfFormula::Random(4, 8, 3, GetParam());
  ASSERT_OK_AND_ASSIGN(Specification spec, CnfToDepth2Spec(formula));
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  bool satisfiable = formula.Solve().has_value();
  EXPECT_EQ(verdict.outcome, satisfiable ? ConsistencyOutcome::kConsistent
                                         : ConsistencyOutcome::kInconsistent)
      << formula.ToString();
  // The fragment is no-star and unary: the Theorem 3.5b checker must
  // agree.
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict no_star,
                       CheckNoStarConsistency(spec.dtd, spec.constraints));
  EXPECT_EQ(no_star.outcome, verdict.outcome);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfDepth2Sweep,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

TEST(SubsetSumTest, OracleAgreesOnFixedCases) {
  EXPECT_TRUE((SubsetSumInstance{5, {2, 3}}).HasSolution());
  EXPECT_FALSE((SubsetSumInstance{4, {2, 3}}).HasSolution());
  EXPECT_TRUE((SubsetSumInstance{10, {3, 3, 4}}).HasSolution());
  EXPECT_FALSE((SubsetSumInstance{11, {3, 3, 4}}).HasSolution());
}

struct SubsetSumCase {
  int64_t target;
  std::vector<int64_t> items;
};

class SubsetSumSweep : public ::testing::TestWithParam<SubsetSumCase> {};

TEST_P(SubsetSumSweep, TwoConstraintSpecMatchesOracle) {
  const SubsetSumCase& param = GetParam();
  SubsetSumInstance instance{param.target, param.items};
  ASSERT_OK_AND_ASSIGN(Specification spec, SubsetSumToSpec(instance));
  // The reduction uses exactly two foreign keys (each a key plus an
  // inclusion).
  EXPECT_EQ(spec.constraints.absolute_inclusions().size(), 2u);
  EXPECT_TRUE(spec.dtd.IsNoStar());
  EXPECT_FALSE(spec.dtd.IsRecursive());
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, instance.HasSolution()
                                 ? ConsistencyOutcome::kConsistent
                                 : ConsistencyOutcome::kInconsistent);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SubsetSumSweep,
    ::testing::Values(SubsetSumCase{5, {2, 3}}, SubsetSumCase{4, {2, 3}},
                      SubsetSumCase{7, {1, 2, 4}}, SubsetSumCase{8, {1, 2, 4}},
                      SubsetSumCase{13, {11, 6, 2}},
                      SubsetSumCase{12, {5, 5, 5}},
                      SubsetSumCase{10, {5, 5, 5}},
                      SubsetSumCase{21, {1, 2, 5, 13}}));

TEST(QbfTest, EvaluatorOnFixedFormulas) {
  // forall x1 exists x2 (x1 <-> x2): valid.
  QbfFormula iff;
  iff.existential = {false, true};
  iff.matrix.num_variables = 2;
  iff.matrix.clauses = {{-1, 2}, {1, -2}};
  EXPECT_TRUE(iff.Evaluate());

  // exists x2 forall x1 (x1 <-> x2): invalid.
  QbfFormula swapped;
  swapped.existential = {true, false};
  swapped.matrix.num_variables = 2;
  swapped.matrix.clauses = {{-2, 1}, {2, -1}};
  EXPECT_FALSE(swapped.Evaluate());
}

class QbfRegularSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QbfRegularSweep, RegularSpecMatchesEvaluator) {
  QbfFormula formula = QbfFormula::Random(3, 4, 2, GetParam());
  ASSERT_OK_AND_ASSIGN(Specification spec, QbfToRegularSpec(formula));
  EXPECT_EQ(spec.Classify(), ConstraintClass::kAcRegular);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, formula.Evaluate()
                                 ? ConsistencyOutcome::kConsistent
                                 : ConsistencyOutcome::kInconsistent)
      << formula.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QbfRegularSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

class QbfHrcSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QbfHrcSweep, HierarchicalSpecMatchesEvaluator) {
  QbfFormula formula = QbfFormula::Random(3, 4, 2, GetParam());
  ASSERT_OK_AND_ASSIGN(Specification spec, QbfTo2HrcSpec(formula));
  ASSERT_OK_AND_ASSIGN(RelativeClassification classification,
                       ClassifyRelative(spec.dtd, spec.constraints));
  EXPECT_TRUE(classification.hierarchical);
  EXPECT_LE(classification.locality, 2);
  ConsistencyChecker checker;
  ASSERT_OK_AND_ASSIGN(ConsistencyVerdict verdict, checker.Check(spec));
  EXPECT_EQ(verdict.outcome, formula.Evaluate()
                                 ? ConsistencyOutcome::kConsistent
                                 : ConsistencyOutcome::kInconsistent)
      << formula.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QbfHrcSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace xmlverify
