// Robustness: parsers must reject malformed input with a Status, never
// crash, on pseudo-random garbage and on adversarial fragments.
#include <gtest/gtest.h>

#include <string>

#include "constraints/constraint_parser.h"
#include "core/specification.h"
#include "regex/regex.h"
#include "tests/test_util.h"
#include "xml/dtd_parser.h"
#include "xml/xml_parser.h"

namespace xmlverify {
namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string RandomGarbage(uint64_t seed, size_t length) {
  static constexpr char kAlphabet[] =
      "<>!()[]{}|,.*+?%#&;= \n\tabcxyzrELEMENTATTLIST\"'-_0123456789";
  uint64_t state = seed;
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out += kAlphabet[NextRandom(&state) % (sizeof(kAlphabet) - 1)];
  }
  return out;
}

class GarbageSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GarbageSweep, DtdParserNeverCrashes) {
  std::string garbage = RandomGarbage(GetParam(), 64 + GetParam() * 7);
  Result<Dtd> dtd = ParseDtd(garbage);
  // Either a parse error or a well-formed accidental DTD; both fine.
  if (dtd.ok()) {
    EXPECT_GE(dtd->num_element_types(), 1);
  }
}

TEST_P(GarbageSweep, RegexParserNeverCrashes) {
  std::string garbage = RandomGarbage(GetParam() + 1000, 32);
  auto resolve = [](const std::string&) { return 0; };
  (void)ParseRegex(garbage, resolve);
}

TEST_P(GarbageSweep, XmlParserNeverCrashes) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n<!ATTLIST a v>"));
  std::string garbage =
      "<r>" + RandomGarbage(GetParam() + 2000, 48) + "</r>";
  (void)ParseXmlDocument(garbage, dtd);
}

TEST_P(GarbageSweep, ConstraintParserNeverCrashes) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n<!ATTLIST a v>"));
  std::string garbage = RandomGarbage(GetParam() + 3000, 40);
  ConstraintSet set;
  (void)ParseConstraintLine(garbage, dtd, &set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageSweep,
                         ::testing::Range(uint64_t{0}, uint64_t{50}));

TEST(AdversarialInputTest, SpecificFragments) {
  const char* fragments[] = {
      "<!ELEMENT",
      "<!ELEMENT >",
      "<!ELEMENT r ((((((((a))))))))>",
      "<!ELEMENT r (a**)>",
      "<!ELEMENT r (%)>",
      "<!ATTLIST>",
      "root",
      "root \n<!ELEMENT r (a)>",
  };
  for (const char* fragment : fragments) {
    (void)ParseDtd(fragment);  // must not crash
  }
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n<!ATTLIST a v>"));
  const char* constraint_fragments[] = {
      "->", "<=", "a.v ->", "-> a", "(((", "a.v <= <= a.v",
      "fk", "fk ", "x(y.z -> y)", "a.v -> a extra",
      "r.**.a.v -> r.**.a",
  };
  for (const char* fragment : constraint_fragments) {
    ConstraintSet set;
    (void)ParseConstraintLine(fragment, dtd, &set);  // must not crash
  }
  const char* xml_fragments[] = {
      "", "<", "<r", "<r/><r/>", "<r a=>", "<r><a v=\"1\"></r>",
      "<r><!-- </r>", "<r>&unknown;</r>",
  };
  for (const char* fragment : xml_fragments) {
    (void)ParseXmlDocument(fragment, dtd);  // must not crash
  }
}

TEST(AdversarialInputTest, DeeplyNestedRegexDoesNotOverflow) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "(";
  deep += "a";
  for (int i = 0; i < 2000; ++i) deep += ")";
  auto resolve = [](const std::string&) { return 0; };
  // Recursion depth ~2000 is fine on default stacks; the parser must
  // simply succeed or fail cleanly.
  (void)ParseRegex(deep, resolve);
}

// The depth-ceiling regressions: 100k-deep nesting would overflow any
// default thread stack if the recursive descent were unguarded. Each
// parser must return kResourceExhausted, not crash.

std::string NestedParens(int depth, const std::string& core) {
  std::string out(static_cast<size_t>(depth), '(');
  out += core;
  out.append(static_cast<size_t>(depth), ')');
  return out;
}

TEST(DepthCeilingTest, HundredThousandDeepRegexIsAParseError) {
  auto resolve = [](const std::string&) { return 0; };
  Result<Regex> deep = ParseRegex(NestedParens(100000, "a"), resolve);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(DepthCeilingTest, HundredThousandDeepContentModelIsAParseError) {
  Result<Dtd> deep =
      ParseDtd("<!ELEMENT r " + NestedParens(100000, "a") + ">");
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(DepthCeilingTest, HundredThousandDeepConstraintPathIsAnError) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n<!ATTLIST a v>"));
  // Whatever the path grammar thinks of 100k parentheses, it must
  // answer with a Status, not a stack overflow.
  std::string line = "r." + NestedParens(100000, "a") + ".v -> r._*.a";
  ConstraintSet set;
  Status deep = ParseConstraintLine(line, dtd, &set);
  EXPECT_FALSE(deep.ok());
}

// Note the root must not recurse into itself (Definition 2.1: r
// appears in no P(tau)), so the deep documents nest a non-root type.
TEST(DepthCeilingTest, HundredThousandDeepXmlDocumentIsAParseError) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n"
                                         "<!ELEMENT a (a*)>"));
  std::string deep = "<r>";
  for (int i = 0; i < 100000; ++i) deep += "<a>";
  for (int i = 0; i < 100000; ++i) deep += "</a>";
  deep += "</r>";
  Result<XmlTree> tree = ParseXmlDocument(deep, dtd);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(DepthCeilingTest, DocumentsAtTheCeilingStillParse) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (a*)>\n"
                                         "<!ELEMENT a (a*)>"));
  // Fifty levels is far below the kDefaultMaxParseDepth of 1000:
  // legitimate nesting must be unaffected by the guard.
  std::string fine = "<r>";
  for (int i = 0; i < 50; ++i) fine += "<a>";
  for (int i = 0; i < 50; ++i) fine += "</a>";
  fine += "</r>";
  EXPECT_OK(ParseXmlDocument(fine, dtd).status());
}

}  // namespace
}  // namespace xmlverify
