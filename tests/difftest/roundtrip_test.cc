// Property test for the serializer↔parser pair: for every tree T the
// difftest oracle would replay, Parse(Serialize(T)) == T. Trees with
// parser-lossy text layout (empty/padded/adjacent text runs) are
// excluded by RoundTripSafe, mirroring the oracle's witness replay.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/specification.h"
#include "difftest/oracle.h"
#include "difftest/spec_generator.h"
#include "tests/test_util.h"
#include "xml/tree.h"
#include "xml/xml_parser.h"

namespace xmlverify {
namespace {

Dtd MustParseDtd(const std::string& text) {
  Result<Specification> spec = Specification::ParseCombined(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).ValueOrDie().dtd;
}

void ExpectRoundTrips(const XmlTree& tree, const Dtd& dtd) {
  std::string xml = tree.ToXml(dtd);
  ASSERT_OK_AND_ASSIGN(XmlTree reparsed, ParseXmlDocument(xml, dtd));
  EXPECT_TRUE(TreesEqual(tree, reparsed)) << xml;
}

TEST(RoundTripTest, HandBuiltTreeRoundTrips) {
  Dtd dtd = MustParseDtd(
      "root r\n"
      "<!ELEMENT r (a.a*)>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "%%\n");
  XmlTree tree(0);
  NodeId first = tree.AddElement(tree.root(), 1);
  tree.SetAttribute(first, "id", "v1");
  tree.AddText(first, "payload");
  NodeId second = tree.AddElement(tree.root(), 1);
  tree.SetAttribute(second, "id", "v2");
  ExpectRoundTrips(tree, dtd);
}

TEST(RoundTripTest, EntityCharactersSurvive) {
  Dtd dtd = MustParseDtd(
      "root r\n"
      "<!ELEMENT r (a)>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a v CDATA #REQUIRED>\n"
      "%%\n");
  const std::vector<std::string> payloads = {
      "&",      "<",           ">",          "\"",
      "'",      "a&b<c>d",     "&amp;",      "&&amp;&",
      "<tag/>", "\"quoted\" & 'apos'",
  };
  for (const std::string& payload : payloads) {
    XmlTree tree(0);
    NodeId child = tree.AddElement(tree.root(), 1);
    tree.SetAttribute(child, "v", payload);
    tree.AddText(child, payload);
    ExpectRoundTrips(tree, dtd);
  }
}

TEST(RoundTripTest, DeepAndWideTreesRoundTrip) {
  Dtd dtd = MustParseDtd(
      "root r\n"
      "<!ELEMENT r (a*)>\n"
      "<!ELEMENT a ((a|%))>\n"
      "<!ATTLIST a k CDATA #REQUIRED>\n"
      "%%\n");
  XmlTree tree(0);
  // Wide: many siblings under the root.
  for (int i = 0; i < 20; ++i) {
    NodeId child = tree.AddElement(tree.root(), 1);
    tree.SetAttribute(child, "k", "w" + std::to_string(i));
    tree.AddText(child, "t" + std::to_string(i));
  }
  // Deep: a chain of nested a-elements.
  NodeId cursor = tree.AddElement(tree.root(), 1);
  tree.SetAttribute(cursor, "k", "d0");
  for (int i = 1; i < 20; ++i) {
    cursor = tree.AddElement(cursor, 1);
    tree.SetAttribute(cursor, "k", "d" + std::to_string(i));
  }
  tree.AddText(cursor, "bottom");
  ExpectRoundTrips(tree, dtd);
}

// The oracle replays every witness it receives; those witnesses come
// from the bounded search over generated specs. Round-trip each one.
TEST(RoundTripTest, OracleWitnessesRoundTrip) {
  int round_tripped = 0;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec generated,
                         GenerateSpec(seed, DifftestClass::kAcUnary, {}));
    CrossCheckReport report = CrossCheckSpecification(generated.spec);
    ASSERT_TRUE(report.agreed()) << "seed " << seed;
    for (const ProcedureRun& run : report.runs) {
      if (!run.ran || !run.verdict.witness.has_value()) continue;
      const XmlTree& witness = *run.verdict.witness;
      if (!RoundTripSafe(witness)) continue;
      ExpectRoundTrips(witness, generated.spec.dtd);
      ++round_tripped;
    }
  }
  EXPECT_GT(round_tripped, 0);
}

}  // namespace
}  // namespace xmlverify
