#include "difftest/oracle.h"

#include <gtest/gtest.h>

#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification MustParse(const std::string& text) {
  Result<Specification> spec = Specification::ParseCombined(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).ValueOrDie();
}

TEST(OracleTest, AgreesOnConsistentSpec) {
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a.a*)>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "%%\n"
      "a.id -> a\n");
  CrossCheckReport report = CrossCheckSpecification(spec);
  EXPECT_TRUE(report.agreed())
      << (report.disagreements.empty() ? "" : report.disagreements[0]);
  ASSERT_TRUE(report.consensus.has_value());
  EXPECT_EQ(*report.consensus, ConsistencyOutcome::kConsistent);
}

TEST(OracleTest, AgreesOnInconsistentSpec) {
  // Two a-children forced by the DTD, unary key on a.id, and a's id
  // must equal the single r.id value: the key cannot hold.
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a.a)>\n"
      "<!ATTLIST r id CDATA #REQUIRED>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "%%\n"
      "a.id -> a\n"
      "a.id <= r.id\n");
  CrossCheckReport report = CrossCheckSpecification(spec);
  EXPECT_TRUE(report.agreed())
      << (report.disagreements.empty() ? "" : report.disagreements[0]);
  ASSERT_TRUE(report.consensus.has_value());
  EXPECT_EQ(*report.consensus, ConsistencyOutcome::kInconsistent);
}

TEST(OracleTest, ExhaustiveRefutationMakesInconsistencyDefinitive) {
  // Finite document space (no stars, no recursion): the bounded
  // search exhausting it is a proof, which the oracle reports as a
  // ran "exhaustive" procedure with an INCONSISTENT verdict.
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a.a)>\n"
      "<!ATTLIST r id CDATA #REQUIRED>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "%%\n"
      "a.id -> a\n"
      "a.id <= r.id\n");
  CrossCheckReport report = CrossCheckSpecification(spec);
  bool exhaustive_ran = false;
  for (const ProcedureRun& run : report.runs) {
    if (run.name == "exhaustive" && run.ran) {
      exhaustive_ran = true;
      EXPECT_EQ(run.verdict.outcome, ConsistencyOutcome::kInconsistent);
    }
  }
  EXPECT_TRUE(exhaustive_ran);
}

TEST(OracleTest, MaxDocumentNodesBoundsFiniteDtds) {
  // r has children a and b; a has one c; all leaves are empty.
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a.b)>\n"
      "<!ELEMENT a (c)>\n"
      "<!ELEMENT b (%)>\n"
      "<!ELEMENT c (%)>\n"
      "%%\n");
  EXPECT_EQ(MaxDocumentNodes(spec.dtd, 100), 4);  // r, a, b, c
  EXPECT_EQ(MaxAttributeSlots(spec.dtd, 100), 0);
}

TEST(OracleTest, MaxDocumentNodesCapsStarsAndRecursion) {
  Specification starred = MustParse(
      "root r\n"
      "<!ELEMENT r (a*)>\n"
      "<!ELEMENT a (%)>\n"
      "%%\n");
  EXPECT_EQ(MaxDocumentNodes(starred.dtd, 10), 10);

  Specification recursive = MustParse(
      "root r\n"
      "<!ELEMENT r (a)>\n"
      "<!ELEMENT a (a|%)>\n"
      "%%\n");
  EXPECT_EQ(MaxDocumentNodes(recursive.dtd, 10), 10);
}

TEST(OracleTest, RoundTripSafeRejectsParserLossyTrees) {
  XmlTree clean(0);
  clean.AddText(clean.root(), "hello");
  EXPECT_TRUE(RoundTripSafe(clean));

  XmlTree empty_text(0);
  empty_text.AddText(empty_text.root(), "");
  EXPECT_FALSE(RoundTripSafe(empty_text));

  XmlTree padded(0);
  padded.AddText(padded.root(), " padded ");
  EXPECT_FALSE(RoundTripSafe(padded));

  XmlTree adjacent(0);
  adjacent.AddText(adjacent.root(), "one");
  adjacent.AddText(adjacent.root(), "two");
  EXPECT_FALSE(RoundTripSafe(adjacent));
}

// Regression: the stitched hierarchical witness must carry the global
// root's required attributes (the root scope has no enclosing scope
// to assign them).
TEST(OracleTest, HierarchicalWitnessCarriesRootAttributes) {
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a)>\n"
      "<!ATTLIST r id CDATA #REQUIRED>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "%%\n"
      "r(a.id -> a)\n");
  CrossCheckReport report = CrossCheckSpecification(spec);
  EXPECT_TRUE(report.agreed())
      << (report.disagreements.empty() ? "" : report.disagreements[0]);
}

}  // namespace
}  // namespace xmlverify
