#include "difftest/shrinker.h"

#include <gtest/gtest.h>

#include "core/specification.h"
#include "difftest/spec_generator.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

Specification MustParse(const std::string& text) {
  Result<Specification> spec = Specification::ParseCombined(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).ValueOrDie();
}

TEST(ShrinkerTest, RemovesIrrelevantStructure) {
  Specification spec = MustParse(
      "root r\n"
      "<!ELEMENT r (a.b.c*)>\n"
      "<!ELEMENT a (%)>\n"
      "<!ATTLIST a id CDATA #REQUIRED>\n"
      "<!ATTLIST a extra CDATA #REQUIRED>\n"
      "<!ELEMENT b (%)>\n"
      "<!ELEMENT c (%)>\n"
      "%%\n"
      "a.id -> a\n");
  // Keep: "still has a key on a.id" — everything else should go.
  SpecPredicate keep = [](const Specification& candidate) {
    for (const AbsoluteKey& key : candidate.constraints.absolute_keys()) {
      for (const std::string& attribute : key.attributes) {
        if (attribute == "id") return true;
      }
    }
    return false;
  };
  ShrinkOutcome outcome = ShrinkSpecification(spec, keep, {});
  EXPECT_TRUE(keep(outcome.spec));
  EXPECT_GT(outcome.rounds, 0);
  // b, c, and the unused attribute must be gone.
  EXPECT_EQ(outcome.spec.dtd.num_element_types(), 2);
  EXPECT_EQ(outcome.spec.constraints.size(), 1);
  for (int type = 0; type < outcome.spec.dtd.num_element_types(); ++type) {
    for (const std::string& attribute : outcome.spec.dtd.Attributes(type)) {
      EXPECT_NE(attribute, "extra");
    }
  }
}

TEST(ShrinkerTest, ResultAlwaysSatisfiesPredicate) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec generated,
                         GenerateSpec(seed, DifftestClass::kAcUnary, {}));
    SpecPredicate keep = [](const Specification& candidate) {
      return candidate.constraints.size() >= 1;
    };
    if (!keep(generated.spec)) continue;
    ShrinkOutcome outcome = ShrinkSpecification(generated.spec, keep, {});
    EXPECT_TRUE(keep(outcome.spec)) << "seed " << seed;
    EXPECT_OK(outcome.spec.constraints.Validate(outcome.spec.dtd));
    // The minimized text is itself a parseable canonical spec.
    ASSERT_OK_AND_ASSIGN(Specification reparsed,
                         Specification::ParseCombined(outcome.text));
    EXPECT_EQ(SpecToText(reparsed), outcome.text);
  }
}

TEST(ShrinkerTest, TrueOnEverythingShrinksToBareRoot) {
  ASSERT_OK_AND_ASSIGN(GeneratedSpec generated,
                       GenerateSpec(4, DifftestClass::kAcUnary, {}));
  SpecPredicate keep = [](const Specification&) { return true; };
  ShrinkOutcome outcome = ShrinkSpecification(generated.spec, keep, {});
  EXPECT_EQ(outcome.spec.dtd.num_element_types(), 1);
  EXPECT_EQ(outcome.spec.constraints.size(), 0);
}

}  // namespace
}  // namespace xmlverify
