// Differential guard for the solver fast path: the presolve + sparse
// two-tier pipeline and the legacy dense pipeline must reach the same
// definitive verdicts on every generated specification. SolverPath::
// kBoth runs both pipelines per grid cell and reports any divergence
// as a disagreement, so a clean sweep here is the equivalence proof in
// miniature (the nightly workflow runs the same mode at 10k seeds).
#include <gtest/gtest.h>

#include "difftest/difftest.h"

namespace xmlverify {
namespace {

TEST(SolverPathTest, FastAndLegacyPipelinesAgreeAcrossSweep) {
  DifftestOptions options;
  options.num_seeds = 25;
  options.jobs = 4;
  options.solver_path = SolverPath::kBoth;
  options.shrink = false;  // any find fails the test; no need to minimize
  DifftestReport report = RunDifftest(options);
  EXPECT_TRUE(report.agreed()) << report.Summary();
  EXPECT_GT(report.specs, 0);
}

TEST(SolverPathTest, ParallelSolverAgreesWithSerialAcrossSweep) {
  // The --solver-jobs cross-pipeline mode: every cell runs the exact
  // procedures once serial and once on the parallel branch-and-bound
  // pool, and any definitive verdict that differs is a disagreement.
  DifftestOptions options;
  options.num_seeds = 20;
  options.jobs = 2;
  options.solver_jobs = 4;
  options.shrink = false;
  DifftestReport report = RunDifftest(options);
  EXPECT_TRUE(report.agreed()) << report.Summary();
  EXPECT_GT(report.specs, 0);
}

TEST(SolverPathTest, LegacyModeStillSweepsCleanly) {
  DifftestOptions options;
  options.num_seeds = 10;
  options.jobs = 4;
  options.solver_path = SolverPath::kLegacy;
  options.shrink = false;
  DifftestReport report = RunDifftest(options);
  EXPECT_TRUE(report.agreed()) << report.Summary();
}

}  // namespace
}  // namespace xmlverify
