#include "difftest/spec_generator.h"

#include <gtest/gtest.h>

#include "core/specification.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(SpecGeneratorTest, SameSeedSameSpec) {
  for (DifftestClass cls : AllDifftestClasses()) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec first, GenerateSpec(7, cls, {}));
    ASSERT_OK_AND_ASSIGN(GeneratedSpec second, GenerateSpec(7, cls, {}));
    EXPECT_EQ(first.text, second.text) << DifftestClassName(cls);
  }
}

TEST(SpecGeneratorTest, DifferentSeedsUsuallyDiffer) {
  int distinct = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec a,
                         GenerateSpec(seed, DifftestClass::kAcUnary, {}));
    ASSERT_OK_AND_ASSIGN(GeneratedSpec b,
                         GenerateSpec(seed + 1, DifftestClass::kAcUnary, {}));
    if (a.text != b.text) ++distinct;
  }
  EXPECT_GE(distinct, 8);
}

TEST(SpecGeneratorTest, GeneratedSpecsValidate) {
  for (DifftestClass cls : AllDifftestClasses()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      ASSERT_OK_AND_ASSIGN(GeneratedSpec generated, GenerateSpec(seed, cls, {}));
      EXPECT_OK(generated.spec.constraints.Validate(generated.spec.dtd));
    }
  }
}

TEST(SpecGeneratorTest, ClassesProduceMatchingConstraintShapes) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ASSERT_OK_AND_ASSIGN(GeneratedSpec ack,
                         GenerateSpec(seed, DifftestClass::kAcK, {}));
    EXPECT_FALSE(ack.spec.constraints.HasInclusions());
    EXPECT_FALSE(ack.spec.constraints.HasRelative());
    EXPECT_FALSE(ack.spec.constraints.HasRegular());

    ASSERT_OK_AND_ASSIGN(GeneratedSpec reg,
                         GenerateSpec(seed, DifftestClass::kAcRegular, {}));
    EXPECT_TRUE(reg.spec.constraints.HasRegular());

    ASSERT_OK_AND_ASSIGN(GeneratedSpec hrc,
                         GenerateSpec(seed, DifftestClass::kHrc, {}));
    EXPECT_TRUE(hrc.spec.constraints.HasRelative());
    EXPECT_FALSE(hrc.spec.dtd.IsRecursive());
  }
}

TEST(SpecGeneratorTest, MultiPrimaryHasAMultiAttributeKey) {
  ASSERT_OK_AND_ASSIGN(GeneratedSpec generated,
                       GenerateSpec(3, DifftestClass::kAcMultiPrimary, {}));
  bool multi = false;
  for (const AbsoluteKey& key : generated.spec.constraints.absolute_keys()) {
    if (key.attributes.size() > 1) multi = true;
  }
  EXPECT_TRUE(multi);
}

// The canonical text must reparse into an identical specification:
// the .xvc in a difftest report IS the failing spec, byte for byte.
TEST(SpecGeneratorTest, CanonicalTextReparsesToItself) {
  for (DifftestClass cls : AllDifftestClasses()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      ASSERT_OK_AND_ASSIGN(GeneratedSpec generated, GenerateSpec(seed, cls, {}));
      ASSERT_OK_AND_ASSIGN(Specification reparsed,
                           Specification::ParseCombined(generated.text));
      EXPECT_EQ(generated.text, SpecToText(reparsed))
          << DifftestClassName(cls) << " seed " << seed;
    }
  }
}

TEST(SpecGeneratorTest, ParseDifftestClassRoundTrips) {
  for (DifftestClass cls : AllDifftestClasses()) {
    ASSERT_OK_AND_ASSIGN(DifftestClass parsed,
                         ParseDifftestClass(DifftestClassName(cls)));
    EXPECT_EQ(parsed, cls);
  }
  EXPECT_FALSE(ParseDifftestClass("bogus").ok());
}

}  // namespace
}  // namespace xmlverify
