// Differential guard for the layered implication engine: in --impl
// mode every generated specification additionally cross-checks, per
// constraint, the syntactic quick tier against the full contrapositive
// encoding and a bounded/exhaustive counterexample search
// (difftest/impl_check.h). A clean sweep here is the nightly 10k-seed
// --impl run in miniature: the quick tier never claims an implication
// the solver or brute force can refute.
#include <gtest/gtest.h>

#include "difftest/difftest.h"
#include "difftest/impl_check.h"
#include "trace/trace.h"

namespace xmlverify {
namespace {

TEST(ImplModeTest, QuickFullAndBruteAgreeAcrossSweep) {
  StatsRegistry stats;
  DifftestOptions options;
  options.num_seeds = 12;
  options.jobs = 4;
  options.impl_mode = true;
  options.shrink = false;  // any find fails the test; no need to minimize
  options.stats = &stats;
  DifftestReport report = RunDifftest(options);
  EXPECT_TRUE(report.agreed()) << report.Summary();
  EXPECT_GT(report.specs, 0);
  // The sweep must actually exercise the exhaustive oracle gate on
  // some cells, or the completeness direction was never tested.
  EXPECT_GT(stats.Counter("difftest/impl_exhaustive_proofs"), 0);
}

TEST(ImplModeTest, CrossCheckAcceptsHandWrittenAgreements) {
  // A spec where the quick tier proves some implications (subsumption,
  // transitivity) and the full tier handles the rest: zero findings.
  Specification spec =
      Specification::Parse(R"(
<!ELEMENT r (a*, b*, c*)>
<!ATTLIST a v>
<!ATTLIST b v>
<!ATTLIST c v>
)",
                           R"(
a.v -> a
a.v <= b.v
b.v <= c.v
a.v <= c.v
)")
          .ValueOrDie();
  EXPECT_TRUE(CrossCheckImplication(spec).empty());
}

}  // namespace
}  // namespace xmlverify
