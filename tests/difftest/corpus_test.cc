// Regression corpus: every shrunken spec that once exposed a
// cross-procedure disagreement lives under tests/difftest/corpus/ and
// must cross-check cleanly forever after. New difftest finds get
// fixed, shrunk, and added here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/specification.h"
#include "difftest/oracle.h"
#include "tests/test_util.h"

#ifndef DIFFTEST_CORPUS_DIR
#error "DIFFTEST_CORPUS_DIR must point at tests/difftest/corpus"
#endif

namespace xmlverify {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(DIFFTEST_CORPUS_DIR)) {
    if (entry.path().extension() == ".xvc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CorpusTest, CorpusIsNotEmpty) {
  EXPECT_FALSE(CorpusFiles().empty());
}

TEST(CorpusTest, EveryCorpusSpecCrossChecksCleanly) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    ASSERT_OK_AND_ASSIGN(Specification spec,
                         Specification::ParseCombined(ReadFile(path)));
    CrossCheckReport report = CrossCheckSpecification(spec);
    EXPECT_TRUE(report.agreed())
        << (report.disagreements.empty() ? "" : report.disagreements[0]);
  }
}

}  // namespace
}  // namespace xmlverify
