#include "base/rational.h"

#include <gtest/gtest.h>

namespace xmlverify {
namespace {

TEST(RationalTest, NormalizesOnConstruction) {
  Rational r(BigInt(6), BigInt(8));
  EXPECT_EQ(r.numerator(), BigInt(3));
  EXPECT_EQ(r.denominator(), BigInt(4));

  Rational negative_den(BigInt(1), BigInt(-2));
  EXPECT_EQ(negative_den.numerator(), BigInt(-1));
  EXPECT_EQ(negative_den.denominator(), BigInt(2));

  Rational zero(BigInt(0), BigInt(-5));
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
}

TEST(RationalTest, Comparisons) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_LT(third, half);
  EXPECT_GT(half, third);
  EXPECT_LE(half, half);
  EXPECT_EQ(Rational(BigInt(2), BigInt(4)), half);
  EXPECT_LT(Rational(-1), Rational(0));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(1), BigInt(3)));
}

TEST(RationalTest, FloorAndCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Floor(), BigInt(3));
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Floor(), BigInt(-4));
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Ceil(), BigInt(-3));
  EXPECT_EQ(Rational(6).Floor(), BigInt(6));
  EXPECT_EQ(Rational(6).Ceil(), BigInt(6));
}

TEST(RationalTest, IsInteger) {
  EXPECT_TRUE(Rational(BigInt(4), BigInt(2)).is_integer());
  EXPECT_FALSE(Rational(BigInt(5), BigInt(2)).is_integer());
  EXPECT_TRUE(Rational(0).is_integer());
}

TEST(RationalTest, ToStringFormats) {
  EXPECT_EQ(Rational(BigInt(3), BigInt(4)).ToString(), "3/4");
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(BigInt(-3), BigInt(6)).ToString(), "-1/2");
}

// Field axioms over a small grid.
TEST(RationalTest, FieldAxiomsGrid) {
  std::vector<Rational> values;
  for (int num = -3; num <= 3; ++num) {
    for (int den = 1; den <= 3; ++den) {
      values.push_back(Rational(BigInt(num), BigInt(den)));
    }
  }
  for (const Rational& a : values) {
    for (const Rational& b : values) {
      EXPECT_EQ(a + b, b + a);
      EXPECT_EQ(a * b, b * a);
      EXPECT_EQ((a + b) - b, a);
      if (!b.is_zero()) {
        EXPECT_EQ((a / b) * b, a);
      }
      EXPECT_EQ(a * (b + b), a * b + a * b);
    }
  }
}

TEST(RationalTest, CreateRejectsZeroDenominator) {
  Result<Rational> bad = Rational::Create(BigInt(1), BigInt(0));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  Result<Rational> good = Rational::Create(BigInt(6), BigInt(-8));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, Rational(BigInt(-3), BigInt(4)));
}

TEST(RationalTest, FromStringParsesAndValidates) {
  Result<Rational> fraction = Rational::FromString("6/8");
  ASSERT_TRUE(fraction.ok());
  EXPECT_EQ(*fraction, Rational(BigInt(3), BigInt(4)));
  Result<Rational> integer = Rational::FromString("-5");
  ASSERT_TRUE(integer.ok());
  EXPECT_EQ(*integer, Rational(-5));
  // The checked path exists so untrusted text cannot reach the
  // aborting constructor: a zero denominator is a Status, not a crash.
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("1/2/3").ok());
  EXPECT_FALSE(Rational::FromString("x/2").ok());
  EXPECT_FALSE(Rational::FromString("").ok());
}

TEST(RationalTest, CompoundOperatorsMatchBinaryForms) {
  const Rational values[] = {
      Rational(0), Rational(3), Rational(-7),
      Rational(BigInt(1), BigInt(2)), Rational(BigInt(-5), BigInt(6)),
      Rational(BigInt::Pow2(80), BigInt(3)),
      Rational(BigInt(7), BigInt::Pow2(70))};
  for (const Rational& a : values) {
    for (const Rational& b : values) {
      Rational sum = a;
      sum += b;
      EXPECT_EQ(sum, a + b);
      Rational diff = a;
      diff -= b;
      EXPECT_EQ(diff, a - b);
      Rational product = a;
      product *= b;
      EXPECT_EQ(product, a * b);
      if (!b.is_zero()) {
        Rational quotient = a;
        quotient /= b;
        EXPECT_EQ(quotient, a / b);
      }
    }
  }
}

TEST(RationalTest, CompoundOperatorsKeepCanonicalForm) {
  // In-place updates must leave the value normalized (reduced, positive
  // denominator), or Compare's cross-multiplication breaks downstream.
  Rational r(BigInt(1), BigInt(6));
  r += Rational(BigInt(1), BigInt(3));  // 1/6 + 2/6 = 1/2, reduced
  EXPECT_EQ(r.numerator(), BigInt(1));
  EXPECT_EQ(r.denominator(), BigInt(2));
  r *= Rational(BigInt(4), BigInt(3));  // 2/3
  EXPECT_EQ(r.numerator(), BigInt(2));
  EXPECT_EQ(r.denominator(), BigInt(3));
  r /= Rational(BigInt(-2), BigInt(3));  // -1, integer again
  EXPECT_EQ(r.numerator(), BigInt(-1));
  EXPECT_EQ(r.denominator(), BigInt(1));
  r -= Rational(BigInt(-3), BigInt(2));  // 1/2
  EXPECT_EQ(r.numerator(), BigInt(1));
  EXPECT_EQ(r.denominator(), BigInt(2));
}

TEST(RationalTest, CompoundOperatorsSafeUnderSelfAssignment) {
  Rational r(BigInt(3), BigInt(4));
  r += r;
  EXPECT_EQ(r, Rational(BigInt(3), BigInt(2)));
  r *= r;
  EXPECT_EQ(r, Rational(BigInt(9), BigInt(4)));
  r /= r;
  EXPECT_EQ(r, Rational(1));
  r -= r;
  EXPECT_TRUE(r.is_zero());
}

TEST(RationalTest, FromStringNormalizesDenominatorSign) {
  // A negative denominator must be folded into the numerator, or the
  // cross-multiplication in Compare (which assumes positive
  // denominators) silently misorders — and with it every simplex
  // ratio test pivoting on parsed coefficients.
  struct Case { const char* text; int64_t num; int64_t den; };
  for (const Case& c : {Case{"-1/2", -1, 2}, Case{"1/-2", -1, 2},
                        Case{"-1/-2", 1, 2}, Case{"3/-6", -1, 2},
                        Case{"0/-7", 0, 1}}) {
    Result<Rational> parsed = Rational::FromString(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed->numerator(), BigInt(c.num)) << c.text;
    EXPECT_EQ(parsed->denominator(), BigInt(c.den)) << c.text;
    EXPECT_FALSE(parsed->denominator().is_negative()) << c.text;
  }
  // Order sanity across the normalized values: 1/-2 < 1/3.
  ASSERT_TRUE(Rational::FromString("1/-2").ok());
  EXPECT_LT(Rational::FromString("1/-2").ValueOrDie(),
            Rational::FromString("1/3").ValueOrDie());
  EXPECT_GT(Rational::FromString("-1/-2").ValueOrDie(),
            Rational::FromString("1/3").ValueOrDie());
}

}  // namespace
}  // namespace xmlverify
