#include "base/status.h"

#include <gtest/gtest.h>

#include "base/string_util.h"

namespace xmlverify {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value;
}

Result<int> DoublePositive(int value) {
  ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> result = DoublePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> result = DoublePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n "), "");
}

TEST(StringUtilTest, SplitAndTrim) {
  std::vector<std::string> pieces = SplitAndTrim(" a, b ,, c ", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, IsValidName) {
  EXPECT_TRUE(IsValidName("country"));
  EXPECT_TRUE(IsValidName("_private"));
  EXPECT_TRUE(IsValidName("a.b-c"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1abc"));
  EXPECT_FALSE(IsValidName("a b"));
  EXPECT_FALSE(IsValidName(".dot"));
}

}  // namespace
}  // namespace xmlverify
