// Differential arithmetic stress harness for the BigInt kernels.
//
// Seeded randomized cross-check of the sub-quadratic kernels
// (Karatsuba multiply, Knuth Algorithm-D divmod, Stein GCD, the
// in-place compound ops) against the schoolbook reference suite that
// ships compiled in behind BigInt::ForceReferenceKernels — the same
// spirit as the difftest oracle, but at the arithmetic layer. Operand
// shapes concentrate on the places kernels break: limb-boundary
//-adjacent sizes (1..64 limbs), signs, zero, powers of two and
// off-by-one neighbors, plus algebraic identities that hold whatever
// the kernel ((a*b)/b == a, a == q*b + r with 0 <= r < |b|, Gcd
// divides both operands).
//
// The seed is fixed for reproducibility; set XMLVERIFY_STRESS_SEED to
// explore further (failures print the seed and trial).
#include "base/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

uint64_t StressSeed() {
  const char* env = std::getenv("XMLVERIFY_STRESS_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x9d2c5680f00d5eedULL;
}

// Random magnitude of exactly `limbs` 32-bit limbs (top limb nonzero),
// with occasional all-ones / single-bit limbs so carry chains and
// cancellation paths get hit. Built through ShlBits/+= — those kernels
// are themselves cross-checked by the compound-op trials below.
BigInt RandomMagnitude(SplitMix64* rng, size_t limbs) {
  BigInt value;
  for (size_t i = 0; i < limbs; ++i) {
    uint32_t chunk;
    switch (rng->Below(8)) {
      case 0:
        chunk = 0xffffffffu;
        break;
      case 1:
        chunk = i + 1 == limbs ? 1u : 0u;  // keep the top limb nonzero
        break;
      case 2:
        chunk = uint32_t{1} << rng->Below(32);
        break;
      default:
        chunk = static_cast<uint32_t>(rng->Next());
        break;
    }
    if (i + 1 == limbs && chunk == 0) chunk = 1;
    value.ShlBits(32);
    value += BigInt(static_cast<int64_t>(chunk));
  }
  return value;
}

// Random operand: limb-boundary-adjacent random magnitudes, powers of
// two and their neighbors, zero — with a random sign.
BigInt RandomOperand(SplitMix64* rng, size_t max_limbs) {
  BigInt value;
  switch (rng->Below(10)) {
    case 0:
      value = BigInt(0);
      break;
    case 1: {
      uint64_t bit = rng->Below(32 * max_limbs + 1);
      value = BigInt::Pow2(bit);
      break;
    }
    case 2: {
      uint64_t bit = 1 + rng->Below(32 * max_limbs);
      value = BigInt::Pow2(bit) - BigInt(1);
      break;
    }
    case 3: {
      uint64_t bit = rng->Below(32 * max_limbs + 1);
      value = BigInt::Pow2(bit) + BigInt(1);
      break;
    }
    default: {
      size_t limbs = 1 + rng->Below(max_limbs);
      value = RandomMagnitude(rng, limbs);
      break;
    }
  }
  if (!value.is_zero() && rng->Below(2) == 0) value = -value;
  return value;
}

struct ArithResults {
  BigInt sum;
  BigInt diff;
  BigInt product;
  BigInt quotient;   // |a| / |b| (only when b != 0)
  BigInt remainder;  // |a| % |b|
  BigInt gcd;
};

ArithResults Compute(const BigInt& a, const BigInt& b) {
  ArithResults out;
  out.sum = a + b;
  out.diff = a - b;
  out.product = a * b;
  if (!b.is_zero()) {
    Status status = a.DivMod(b, &out.quotient, &out.remainder);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  out.gcd = BigInt::Gcd(a, b);
  return out;
}

class ReferenceKernelScope {
 public:
  ReferenceKernelScope() { BigInt::ForceReferenceKernels(true); }
  ~ReferenceKernelScope() { BigInt::ForceReferenceKernels(false); }
};

TEST(BigIntStressTest, FastKernelsMatchReferenceKernels) {
  const uint64_t seed = StressSeed();
  SplitMix64 rng(seed);
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " trial=" + std::to_string(trial));
    BigInt a = RandomOperand(&rng, 64);
    BigInt b = RandomOperand(&rng, 64);
    ArithResults fast = Compute(a, b);
    ArithResults ref;
    {
      ReferenceKernelScope reference;
      ref = Compute(a, b);
    }
    EXPECT_EQ(fast.sum, ref.sum);
    EXPECT_EQ(fast.diff, ref.diff);
    EXPECT_EQ(fast.product, ref.product);
    EXPECT_EQ(fast.gcd, ref.gcd);
    if (!b.is_zero()) {
      EXPECT_EQ(fast.quotient, ref.quotient);
      EXPECT_EQ(fast.remainder, ref.remainder);
    }
  }
}

TEST(BigIntStressTest, AlgebraicIdentities) {
  const uint64_t seed = StressSeed() ^ 0xa5a5a5a5a5a5a5a5ULL;
  SplitMix64 rng(seed);
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " trial=" + std::to_string(trial));
    BigInt a = RandomOperand(&rng, 64);
    BigInt b = RandomOperand(&rng, 64);
    // Ring identities.
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + b), a * b + a * b);
    if (!b.is_zero()) {
      // Exact-division round trip through the multiply and divide
      // kernels together.
      EXPECT_EQ((a * b) / b, a);
      // Division identity on magnitudes: |a| = q*|b| + r, 0 <= r < |b|.
      BigInt q;
      BigInt r;
      ASSERT_OK(a.DivMod(b, &q, &r));
      EXPECT_EQ(q * b.Abs() + r, a.Abs());
      EXPECT_FALSE(r.is_negative());
      EXPECT_LT(r, b.Abs());
    }
    // Gcd divides both operands and is nonnegative.
    BigInt g = BigInt::Gcd(a, b);
    EXPECT_FALSE(g.is_negative());
    if (!g.is_zero()) {
      EXPECT_TRUE((a % g).is_zero());
      EXPECT_TRUE((b % g).is_zero());
    } else {
      // Gcd is zero only when both inputs are.
      EXPECT_TRUE(a.is_zero());
      EXPECT_TRUE(b.is_zero());
    }
  }
}

TEST(BigIntStressTest, InPlaceOpsMatchValueForms) {
  const uint64_t seed = StressSeed() ^ 0x5ee15ee15ee15ee1ULL;
  SplitMix64 rng(seed);
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " trial=" + std::to_string(trial));
    BigInt a = RandomOperand(&rng, 48);
    BigInt b = RandomOperand(&rng, 48);
    BigInt c = RandomOperand(&rng, 8);
    BigInt t = a;
    t += b;
    EXPECT_EQ(t, a + b);
    t = a;
    t -= b;
    EXPECT_EQ(t, a - b);
    t = a;
    t *= b;
    EXPECT_EQ(t, a * b);
    t = a;
    t.SubMul(b, c);
    EXPECT_EQ(t, a - b * c);
    // Aliased forms.
    t = a;
    t += t;
    EXPECT_EQ(t, a + a);
    t = a;
    t -= t;
    EXPECT_TRUE(t.is_zero());
    t = a;
    t *= t;
    EXPECT_EQ(t, a * a);
    // Shift round trip against multiply/divide by 2^s.
    uint64_t s = rng.Below(200);
    t = a;
    t.ShlBits(s);
    EXPECT_EQ(t, a * BigInt::Pow2(s));
    t.ShrBits(s);
    EXPECT_EQ(t, a);
    // MulAddSmall against the operator form.
    int64_t m = static_cast<int64_t>(rng.Next() >> 1);  // nonnegative
    int64_t add = static_cast<int64_t>(rng.Next() >> 1);
    t = a;
    t.MulAddSmall(m, add);
    EXPECT_EQ(t, a * BigInt(m) + BigInt(add));
  }
}

}  // namespace
}  // namespace xmlverify
