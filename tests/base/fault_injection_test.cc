#include "base/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/resource_guard.h"
#include "base/status.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

#ifndef XMLVERIFY_DISABLE_FAULT_INJECTION

// Every test leaves the injector disarmed so the rest of the suite
// runs clean.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Disarm(); }
};

TEST_F(FaultInjectionTest, DisarmedNeverFails) {
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_FALSE(FaultInjector::ShouldFail("alloc"));
  EXPECT_EQ(FaultInjector::HitCount("alloc"), 0);
}

TEST_F(FaultInjectionTest, BarePointFailsEveryHit) {
  ASSERT_OK(FaultInjector::Arm("alloc"));
  EXPECT_TRUE(FaultInjector::ShouldFail("alloc"));
  EXPECT_TRUE(FaultInjector::ShouldFail("alloc"));
  EXPECT_FALSE(FaultInjector::ShouldFail("solver_pivot"));
  EXPECT_EQ(FaultInjector::HitCount("alloc"), 2);
}

TEST_F(FaultInjectionTest, NthHitClauseFiresExactlyOnce) {
  ASSERT_OK(FaultInjector::Arm("cache_insert=3"));
  EXPECT_FALSE(FaultInjector::ShouldFail("cache_insert"));
  EXPECT_FALSE(FaultInjector::ShouldFail("cache_insert"));
  EXPECT_TRUE(FaultInjector::ShouldFail("cache_insert"));
  EXPECT_FALSE(FaultInjector::ShouldFail("cache_insert"));
}

TEST_F(FaultInjectionTest, NthOnwardClauseFiresFromNOn) {
  ASSERT_OK(FaultInjector::Arm("manifest_io=2+"));
  EXPECT_FALSE(FaultInjector::ShouldFail("manifest_io"));
  EXPECT_TRUE(FaultInjector::ShouldFail("manifest_io"));
  EXPECT_TRUE(FaultInjector::ShouldFail("manifest_io"));
}

TEST_F(FaultInjectionTest, ProbabilisticClauseIsDeterministicPerSeed) {
  ASSERT_OK(FaultInjector::Arm("alloc=%3", /*seed=*/42));
  std::vector<bool> first;
  for (int i = 0; i < 300; ++i) first.push_back(FaultInjector::ShouldFail("alloc"));
  ASSERT_OK(FaultInjector::Arm("alloc=%3", /*seed=*/42));
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(FaultInjector::ShouldFail("alloc"), first[i]) << "hit " << i;
  }
  // Roughly 1-in-3 of hits fire: loose bounds, deterministic stream.
  int fired = 0;
  for (bool hit : first) fired += hit ? 1 : 0;
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 250);
}

TEST_F(FaultInjectionTest, CommaSeparatedClausesArmIndependently) {
  ASSERT_OK(FaultInjector::Arm("alloc=1,solver_pivot"));
  EXPECT_TRUE(FaultInjector::ShouldFail("alloc"));
  EXPECT_FALSE(FaultInjector::ShouldFail("alloc"));
  EXPECT_TRUE(FaultInjector::ShouldFail("solver_pivot"));
}

TEST_F(FaultInjectionTest, MalformedSpecIsInvalidArgument) {
  EXPECT_EQ(FaultInjector::Arm("alloc=").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Arm("=3").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultInjector::Arm("alloc=%0").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultInjectionTest, InjectedStatusIsResourceExhausted) {
  Status injected = FaultInjector::Injected("alloc");
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, AllocFaultSurfacesThroughChargeMemory) {
  ASSERT_OK(FaultInjector::Arm("alloc=2"));
  ResourceBudget budget;
  EXPECT_OK(budget.ChargeMemory(8, "test/a"));
  Status injected = budget.ChargeMemory(8, "test/b");
  EXPECT_EQ(injected.code(), StatusCode::kResourceExhausted);
  // The injected failure, like a real one, records no charge.
  EXPECT_EQ(budget.memory_used(), 8);
}

TEST_F(FaultInjectionTest, DisarmClearsRulesAndCounts) {
  ASSERT_OK(FaultInjector::Arm("alloc"));
  EXPECT_TRUE(FaultInjector::ShouldFail("alloc"));
  FaultInjector::Disarm();
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_FALSE(FaultInjector::ShouldFail("alloc"));
  EXPECT_EQ(FaultInjector::HitCount("alloc"), 0);
}

#else  // XMLVERIFY_DISABLE_FAULT_INJECTION

TEST(FaultInjectionCompiledOutTest, ArmIsUnsupportedAndHooksAreInert) {
  EXPECT_EQ(FaultInjector::Arm("alloc").code(), StatusCode::kUnsupported);
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_FALSE(FaultInjector::ShouldFail("alloc"));
}

#endif

}  // namespace
}  // namespace xmlverify
