#include "base/smallrat.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "base/rational.h"

namespace xmlverify {
namespace {

TEST(SmallRationalTest, MakeCanonicalizes) {
  SmallRational r;
  ASSERT_TRUE(SmallRational::Make(6, 4, &r));
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);

  ASSERT_TRUE(SmallRational::Make(1, -2, &r));
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);

  ASSERT_TRUE(SmallRational::Make(-9, -3, &r));
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 1);

  ASSERT_TRUE(SmallRational::Make(0, -7, &r));
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);

  EXPECT_FALSE(SmallRational::Make(1, 0, &r));
}

TEST(SmallRationalTest, MakeRejectsUnreducibleInt64Min) {
  // INT64_MIN cannot be negated, so a canonical pair holding it in
  // either slot (after reduction) must be rejected rather than left
  // with a numerator whose magnitude overflows on operator-.
  SmallRational r;
  EXPECT_FALSE(SmallRational::Make(INT64_MIN, 1, &r));
  EXPECT_FALSE(SmallRational::Make(1, INT64_MIN, &r));
  // The rejection is deliberately conservative: even INT64_MIN/2,
  // which would reduce into range, is refused up front. The only cost
  // is an unnecessary promotion to the BigInt tier.
  EXPECT_FALSE(SmallRational::Make(INT64_MIN, 2, &r));
  // One step inside the boundary works.
  ASSERT_TRUE(SmallRational::Make(INT64_MIN + 1, 1, &r));
  EXPECT_EQ(r.num(), INT64_MIN + 1);
}

// Reference check: every small-tier op must agree with the BigInt tier.
void ExpectAgreesWithRational(const SmallRational& a, const SmallRational& b) {
  Rational ra = a.ToRational();
  Rational rb = b.ToRational();
  SmallRational out;
  if (SmallRational::Add(a, b, &out)) {
    EXPECT_EQ(out.ToRational(), ra + rb) << a.ToString() << "+" << b.ToString();
  }
  if (SmallRational::Sub(a, b, &out)) {
    EXPECT_EQ(out.ToRational(), ra - rb) << a.ToString() << "-" << b.ToString();
  }
  if (SmallRational::Mul(a, b, &out)) {
    EXPECT_EQ(out.ToRational(), ra * rb) << a.ToString() << "*" << b.ToString();
  }
  if (!b.is_zero() && SmallRational::Div(a, b, &out)) {
    EXPECT_EQ(out.ToRational(), ra / rb) << a.ToString() << "/" << b.ToString();
  }
  EXPECT_EQ(a.Compare(b), ra.Compare(rb));
}

TEST(SmallRationalTest, ArithmeticMatchesBigIntTier) {
  std::vector<SmallRational> values;
  const int64_t nums[] = {0,  1,  -1, 2,  3,  -5, 7,  100, -999,
                          INT64_MAX, INT64_MAX - 1, -(INT64_MAX - 7)};
  const int64_t dens[] = {1, 2, 3, 7, 1000, INT64_MAX};
  for (int64_t n : nums) {
    for (int64_t d : dens) {
      SmallRational r;
      if (SmallRational::Make(n, d, &r)) values.push_back(r);
    }
  }
  for (const SmallRational& a : values) {
    for (const SmallRational& b : values) {
      ExpectAgreesWithRational(a, b);
    }
  }
}

TEST(SmallRationalTest, SubMulMatchesTwoStepResult) {
  SmallRational a, b, c;
  ASSERT_TRUE(SmallRational::Make(7, 3, &a));
  ASSERT_TRUE(SmallRational::Make(-5, 2, &b));
  ASSERT_TRUE(SmallRational::Make(11, 6, &c));
  SmallRational fused;
  ASSERT_TRUE(SmallRational::SubMul(a, b, c, &fused));
  EXPECT_EQ(fused.ToRational(),
            a.ToRational() - b.ToRational() * c.ToRational());
}

TEST(SmallRationalTest, OverflowIsReportedNotWrapped) {
  SmallRational big;
  ASSERT_TRUE(SmallRational::Make(INT64_MAX, 1, &big));
  SmallRational out;
  // MAX + MAX and MAX * MAX leave int64 range even after reduction.
  EXPECT_FALSE(SmallRational::Add(big, big, &out));
  EXPECT_FALSE(SmallRational::Mul(big, big, &out));
  // MAX - MAX collapses to zero: fine in the small tier.
  ASSERT_TRUE(SmallRational::Sub(big, big, &out));
  EXPECT_TRUE(out.is_zero());
  // Huge denominators: 1/MAX + 1/(MAX-1) needs a denominator product
  // far beyond int64.
  SmallRational tiny_a, tiny_b;
  ASSERT_TRUE(SmallRational::Make(1, INT64_MAX, &tiny_a));
  ASSERT_TRUE(SmallRational::Make(1, INT64_MAX - 1, &tiny_b));
  EXPECT_FALSE(SmallRational::Add(tiny_a, tiny_b, &out));
}

TEST(SmallRationalTest, AliasedOutputIsSafe) {
  SmallRational a, b;
  ASSERT_TRUE(SmallRational::Make(3, 4, &a));
  ASSERT_TRUE(SmallRational::Make(5, 6, &b));
  SmallRational expected;
  ASSERT_TRUE(SmallRational::Add(a, b, &expected));
  ASSERT_TRUE(SmallRational::Add(a, b, &a));  // out aliases lhs
  EXPECT_EQ(a.Compare(expected), 0);
  ASSERT_TRUE(SmallRational::Make(3, 4, &a));
  ASSERT_TRUE(SmallRational::Mul(a, a, &a));  // all three alias
  SmallRational nine_sixteenths;
  ASSERT_TRUE(SmallRational::Make(9, 16, &nine_sixteenths));
  EXPECT_EQ(a.Compare(nine_sixteenths), 0);
}

TEST(SmallRationalTest, FromRationalRoundTrips) {
  SmallRational r;
  ASSERT_TRUE(SmallRational::FromRational(Rational(BigInt(-7), BigInt(3)), &r));
  EXPECT_EQ(r.num(), -7);
  EXPECT_EQ(r.den(), 3);
  // A numerator beyond int64 must be rejected.
  Rational huge(BigInt::Pow2(80), BigInt(3));
  EXPECT_FALSE(SmallRational::FromRational(huge, &r));
  // INT64_MIN is representable as a BigInt numerator but not as a
  // canonical SmallRational (negation would overflow).
  Rational min_num{BigInt(INT64_MIN), BigInt(1)};
  EXPECT_FALSE(SmallRational::FromRational(min_num, &r));
}

// ---------------------------------------------------------------------

TEST(TwoTierRationalTest, StaysSmallOnSmallArithmetic) {
  TwoTierRational a(int64_t{7});
  TwoTierRational b(int64_t{3});
  a /= b;  // 7/3
  a += TwoTierRational(int64_t{1});
  EXPECT_TRUE(a.small());
  EXPECT_EQ(a.ToRational(), Rational(BigInt(10), BigInt(3)));
}

TEST(TwoTierRationalTest, PromotesOnOverflowAndStaysExact) {
  TwoTierRational big(BigInt(INT64_MAX));
  EXPECT_TRUE(big.small());
  TwoTierRational product = big;
  product *= big;  // MAX^2: must promote
  EXPECT_FALSE(product.small());
  EXPECT_EQ(product.ToRational(),
            Rational(BigInt(INT64_MAX) * BigInt(INT64_MAX)));
}

TEST(TwoTierRationalTest, DemotesWhenResultShrinks) {
  TwoTierRational value(BigInt(INT64_MAX));
  TwoTierRational copy = value;
  value *= copy;  // promoted
  ASSERT_FALSE(value.small());
  // Divide back down: MAX^2 / MAX = MAX fits the small tier again.
  value /= copy;
  EXPECT_TRUE(value.small());
  EXPECT_EQ(value.ToRational(), Rational(BigInt(INT64_MAX)));
}

TEST(TwoTierRationalTest, ConstructionFromBigValueStartsBig) {
  TwoTierRational value(BigInt::Pow2(100));
  EXPECT_FALSE(value.small());
  TwoTierRational small_again(BigInt(42));
  EXPECT_TRUE(small_again.small());
}

TEST(TwoTierRationalTest, MixedTierArithmeticIsExact) {
  TwoTierRational big(BigInt::Pow2(100));
  TwoTierRational small(int64_t{5});
  TwoTierRational sum = big;
  sum += small;
  EXPECT_EQ(sum.ToRational(), Rational(BigInt::Pow2(100) + BigInt(5)));
  TwoTierRational diff = small;
  diff -= big;
  EXPECT_EQ(diff.ToRational(), Rational(BigInt(5) - BigInt::Pow2(100)));
}

TEST(TwoTierRationalTest, SubMulKernelMatchesReference) {
  // Small path.
  TwoTierRational a(int64_t{7});
  TwoTierRational b(int64_t{2});
  TwoTierRational c(int64_t{3});
  a.SubMul(b, c);
  EXPECT_TRUE(a.small());
  EXPECT_EQ(a.ToRational(), Rational(1));
  // Overflowing path: a - b*c where b*c leaves int64.
  TwoTierRational base(int64_t{1});
  TwoTierRational big(BigInt(INT64_MAX));
  base.SubMul(big, big);
  EXPECT_EQ(base.ToRational(),
            Rational(BigInt(1) - BigInt(INT64_MAX) * BigInt(INT64_MAX)));
  // Cancellation demotes: MAX^2 - MAX*MAX = 0.
  TwoTierRational squared = big;
  squared *= big;
  squared.SubMul(big, big);
  EXPECT_TRUE(squared.small());
  EXPECT_TRUE(squared.is_zero());
}

TEST(TwoTierRationalTest, CompareCrossesTiers) {
  TwoTierRational small(int64_t{3});
  TwoTierRational big(BigInt::Pow2(100));
  EXPECT_LT(small.Compare(big), 0);
  EXPECT_GT(big.Compare(small), 0);
  TwoTierRational promoted_three(BigInt::Pow2(100));
  promoted_three -= big;
  promoted_three += small;  // equals 3, possibly after demotion
  EXPECT_EQ(promoted_three.Compare(small), 0);
}

TEST(TwoTierRationalTest, CopyAndMoveSemantics) {
  TwoTierRational big(BigInt::Pow2(90));
  TwoTierRational copy = big;
  EXPECT_EQ(copy.Compare(big), 0);
  copy += TwoTierRational(int64_t{1});
  EXPECT_NE(copy.Compare(big), 0);  // deep copy, not shared state
  TwoTierRational moved = std::move(copy);
  EXPECT_EQ(moved.ToRational(), Rational(BigInt::Pow2(90) + BigInt(1)));
  // Self-assignment keeps the value.
  TwoTierRational& alias = big;
  big = alias;
  EXPECT_EQ(big.ToRational(), Rational(BigInt::Pow2(90)));
  // Aliased compound ops.
  TwoTierRational x(int64_t{4});
  x += x;
  EXPECT_EQ(x.ToRational(), Rational(8));
  x.SubMul(x, TwoTierRational(int64_t{1}));  // x - x*1 = 0
  EXPECT_TRUE(x.is_zero());
}

TEST(TwoTierRationalTest, NegateBothTiers) {
  TwoTierRational small(int64_t{5});
  small.Negate();
  EXPECT_EQ(small.ToRational(), Rational(-5));
  TwoTierRational big(BigInt::Pow2(100));
  big.Negate();
  EXPECT_EQ(big.ToRational(), Rational(BigInt(0) - BigInt::Pow2(100)));
}

}  // namespace
}  // namespace xmlverify
