// SharedCache: memoization semantics, counters, eviction, and
// concurrent access.
#include "base/shared_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace xmlverify {
namespace {

TEST(SharedCacheTest, LookupMissThenInsertThenHit) {
  SharedCache<int> cache;
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  std::shared_ptr<const int> inserted = cache.Insert("k", 7);
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(*inserted, 7);
  std::shared_ptr<const int> found = cache.Lookup("k");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedCacheTest, FirstWriterWins) {
  SharedCache<int> cache;
  cache.Insert("k", 1);
  // A racing second insert must not replace the published value:
  // earlier callers may already hold the first pointer.
  std::shared_ptr<const int> second = cache.Insert("k", 2);
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(*cache.Lookup("k"), 1);
}

TEST(SharedCacheTest, GetOrComputeComputesOnce) {
  SharedCache<std::string> cache;
  int computed = 0;
  auto factory = [&computed] {
    ++computed;
    return std::string("value");
  };
  EXPECT_EQ(*cache.GetOrCompute("k", factory), "value");
  EXPECT_EQ(*cache.GetOrCompute("k", factory), "value");
  EXPECT_EQ(computed, 1);
}

TEST(SharedCacheTest, EpochEvictionClearsWhenFull) {
  SharedCache<int> cache(/*max_entries=*/4);
  for (int i = 0; i < 4; ++i) cache.Insert("k" + std::to_string(i), i);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Insert("overflow", 99);  // new key at capacity: epoch clear
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(*cache.Lookup("overflow"), 99);
  // Values handed out before the clear stay valid via shared_ptr; the
  // old keys are simply gone from the map.
  EXPECT_EQ(cache.Lookup("k0"), nullptr);
}

TEST(SharedCacheTest, ConcurrentInsertsAndLookupsAgree) {
  SharedCache<int> cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int round = 0; round < 50; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          std::string key = "k" + std::to_string(k);
          std::shared_ptr<const int> value = cache.Lookup(key);
          if (value == nullptr) {
            // Every thread proposes its own value; whichever insert
            // lands first defines the key forever after.
            value = cache.Insert(key, k * 1000 + t);
          }
          ASSERT_LT(*value % 1000, 1000);
          ASSERT_EQ(*value / 1000, k);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
  // Whatever value won for k stays self-consistent.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(*cache.Lookup("k" + std::to_string(k)) / 1000, k);
  }
}

}  // namespace
}  // namespace xmlverify
