// Deadline and PeriodicDeadlineCheck semantics.
#include "base/deadline.h"

#include <gtest/gtest.h>

#include <thread>

namespace xmlverify {
namespace {

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterItsBudget) {
  Deadline deadline = Deadline::AfterMillis(20);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.Remaining(), Deadline::Clock::duration::zero());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(deadline.Expired());
}

TEST(PeriodicDeadlineCheckTest, InfiniteDeadlineIsFree) {
  PeriodicDeadlineCheck check((Deadline()));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(check.Expired());
}

TEST(PeriodicDeadlineCheckTest, DetectsExpiryWithinOneStride) {
  PeriodicDeadlineCheck check(Deadline::AfterMillis(0), /*stride=*/8);
  bool expired = false;
  // The clock is polled at least once every `stride` calls, so an
  // already-expired deadline must surface within one full stride.
  for (int i = 0; i < 8 && !expired; ++i) expired = check.Expired();
  EXPECT_TRUE(expired);
  // Sticky: once seen, every later call reports expiry too.
  EXPECT_TRUE(check.Expired());
}

TEST(PeriodicDeadlineCheckTest, UnexpiredDeadlineStaysQuiet) {
  PeriodicDeadlineCheck check(Deadline::AfterMillis(60000), /*stride=*/1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(check.Expired());
}

}  // namespace
}  // namespace xmlverify
