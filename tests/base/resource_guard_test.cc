#include "base/resource_guard.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "base/status.h"
#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(ResourceBudgetTest, UnlimitedBudgetNeverFails) {
  ResourceBudget budget;
  EXPECT_OK(budget.ChargeMemory(int64_t{1} << 40, "test/huge"));
  EXPECT_OK(budget.CheckDepth(1'000'000, "test/deep"));
  EXPECT_OK(budget.CheckDeadline("test/clock"));
  EXPECT_EQ(budget.memory_used(), int64_t{1} << 40);
}

TEST(ResourceBudgetTest, MemoryCeilingIsEnforced) {
  ResourceBudget budget;
  budget.set_memory_limit_bytes(1000);
  EXPECT_OK(budget.ChargeMemory(600, "test/a"));
  EXPECT_OK(budget.ChargeMemory(400, "test/b"));
  Status over = budget.ChargeMemory(1, "test/c");
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // The failed charge was not recorded.
  EXPECT_EQ(budget.memory_used(), 1000);
  budget.ReleaseMemory(400);
  EXPECT_OK(budget.ChargeMemory(1, "test/c"));
}

TEST(ResourceBudgetTest, ReleaseClampsAtZero) {
  ResourceBudget budget;
  EXPECT_OK(budget.ChargeMemory(10, "test/a"));
  budget.ReleaseMemory(1000);
  EXPECT_EQ(budget.memory_used(), 0);
}

TEST(ResourceBudgetTest, PeakTracksHighWaterMark) {
  ResourceBudget budget;
  EXPECT_OK(budget.ChargeMemory(500, "test/a"));
  budget.ReleaseMemory(500);
  EXPECT_OK(budget.ChargeMemory(100, "test/b"));
  EXPECT_EQ(budget.memory_peak(), 500);
}

TEST(ResourceBudgetTest, CopiesShareAccountingButNotLimits) {
  ResourceBudget base;
  base.set_memory_limit_bytes(1000);
  ResourceBudget copy = base;
  // Raising the copy's ceiling leaves the base's ceiling intact...
  copy.set_memory_limit_bytes(2000);
  EXPECT_EQ(base.memory_limit_bytes(), 1000);
  // ...but a charge through either copy is visible to both.
  EXPECT_OK(copy.ChargeMemory(700, "test/shared"));
  EXPECT_EQ(base.memory_used(), 700);
  Status over = base.ChargeMemory(400, "test/over");
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_OK(copy.ChargeMemory(400, "test/under"));
}

TEST(ResourceBudgetTest, DepthCeilingIsEnforced) {
  ResourceBudget budget;
  budget.set_max_depth(10);
  EXPECT_OK(budget.CheckDepth(10, "test/depth"));
  Status deep = budget.CheckDepth(11, "test/depth");
  EXPECT_EQ(deep.code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ExpiredDeadlineIsDeadlineExceededNotResource) {
  ResourceBudget budget;
  budget.set_deadline(Deadline::AfterMillis(0));
  Status expired = budget.CheckDeadline("test/clock");
  EXPECT_EQ(expired.code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceBudgetTest, ConcurrentChargesNeverExceedTheCeiling) {
  ResourceBudget budget;
  budget.set_memory_limit_bytes(10'000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget]() {
      for (int i = 0; i < 1000; ++i) {
        if (budget.ChargeMemory(7, "test/concurrent").ok()) {
          budget.ReleaseMemory(7);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(budget.memory_used(), 0);
  EXPECT_LE(budget.memory_peak(), 10'000);
}

TEST(ScopedMemoryChargeTest, ReleasesOnDestruction) {
  ResourceBudget budget;
  {
    ScopedMemoryCharge charge(budget, 128, "test/scoped");
    ASSERT_OK(charge.status());
    EXPECT_EQ(budget.memory_used(), 128);
  }
  EXPECT_EQ(budget.memory_used(), 0);
}

TEST(ScopedMemoryChargeTest, FailedChargeReleasesNothing) {
  ResourceBudget budget;
  budget.set_memory_limit_bytes(100);
  ASSERT_OK(budget.ChargeMemory(90, "test/base"));
  {
    ScopedMemoryCharge charge(budget, 50, "test/scoped");
    EXPECT_EQ(charge.status().code(), StatusCode::kResourceExhausted);
  }
  // The failed scope must not have "released" bytes it never charged.
  EXPECT_EQ(budget.memory_used(), 90);
}

TEST(MaxParseDepthTest, OverrideAndRestore) {
  EXPECT_EQ(MaxParseDepth(), kDefaultMaxParseDepth);
  SetMaxParseDepth(25);
  EXPECT_EQ(MaxParseDepth(), 25);
  SetMaxParseDepth(0);  // non-positive restores the default
  EXPECT_EQ(MaxParseDepth(), kDefaultMaxParseDepth);
}

}  // namespace
}  // namespace xmlverify
