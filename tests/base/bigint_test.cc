#include "base/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-7).ToString(), "-7");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* text :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-999999999999999999999999"}) {
    ASSERT_OK_AND_ASSIGN(BigInt value, BigInt::FromString(text));
    EXPECT_EQ(value.ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  ASSERT_OK_AND_ASSIGN(BigInt value, BigInt::FromString("-0"));
  EXPECT_EQ(value, BigInt(0));
  EXPECT_FALSE(value.is_negative());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::Pow2(64) - BigInt(1);
  EXPECT_EQ((a + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SignedArithmetic) {
  EXPECT_EQ(BigInt(5) + BigInt(-8), BigInt(-3));
  EXPECT_EQ(BigInt(-5) + BigInt(-8), BigInt(-13));
  EXPECT_EQ(BigInt(5) - BigInt(8), BigInt(-3));
  EXPECT_EQ(BigInt(-5) * BigInt(8), BigInt(-40));
  EXPECT_EQ(BigInt(-5) * BigInt(-8), BigInt(40));
  EXPECT_EQ(BigInt(0) * BigInt(-8), BigInt(0));
}

TEST(BigIntTest, MultiplicationLarge) {
  ASSERT_OK_AND_ASSIGN(BigInt a,
                       BigInt::FromString("123456789123456789123456789"));
  ASSERT_OK_AND_ASSIGN(BigInt b, BigInt::FromString("987654321987654321"));
  EXPECT_EQ((a * b).ToString(),
            "121932631356500531469135800347203169112635269");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
}

TEST(BigIntTest, FloorAndCeilDivision) {
  EXPECT_EQ(BigInt(7).FloorDiv(BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt(-7).FloorDiv(BigInt(2)), BigInt(-4));
  EXPECT_EQ(BigInt(7).CeilDiv(BigInt(2)), BigInt(4));
  EXPECT_EQ(BigInt(-7).CeilDiv(BigInt(2)), BigInt(-3));
  EXPECT_EQ(BigInt(6).FloorDiv(BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt(6).CeilDiv(BigInt(2)), BigInt(3));
}

TEST(BigIntTest, DivModLargeRoundTrip) {
  ASSERT_OK_AND_ASSIGN(BigInt a,
                       BigInt::FromString("340282366920938463463374607431768211455"));
  ASSERT_OK_AND_ASSIGN(BigInt b, BigInt::FromString("18446744073709551629"));
  BigInt quotient;
  BigInt remainder;
  ASSERT_OK(a.DivMod(b, &quotient, &remainder));
  EXPECT_EQ(quotient * b + remainder, a);
  EXPECT_TRUE(remainder < b);
}

TEST(BigIntTest, DivModByZeroIsAnErrorNotACrash) {
  BigInt quotient;
  BigInt remainder;
  Status status = BigInt(42).DivMod(BigInt(0), &quotient, &remainder);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The operator forms degrade to zero instead of aborting.
  EXPECT_EQ(BigInt(42) / BigInt(0), BigInt(0));
  EXPECT_EQ(BigInt(42) % BigInt(0), BigInt(0));
  EXPECT_EQ(BigInt(42).FloorDiv(BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt(42).CeilDiv(BigInt(0)), BigInt(0));
}

TEST(BigIntTest, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, CompareTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::Pow2(100));
  EXPECT_LT(-BigInt::Pow2(100), BigInt(-1));
}

TEST(BigIntTest, FitsInt64Boundaries) {
  EXPECT_TRUE(BigInt(INT64_MAX).FitsInt64());
  EXPECT_TRUE(BigInt(INT64_MIN).FitsInt64());
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).FitsInt64());
  EXPECT_TRUE((BigInt(INT64_MIN) + BigInt(1)).FitsInt64());
  ASSERT_OK_AND_ASSIGN(int64_t min64, BigInt(INT64_MIN).TryToInt64());
  EXPECT_EQ(min64, INT64_MIN);
  ASSERT_OK_AND_ASSIGN(int64_t max64, BigInt(INT64_MAX).TryToInt64());
  EXPECT_EQ(max64, INT64_MAX);
  Result<int64_t> overflow = (BigInt(INT64_MAX) + BigInt(1)).TryToInt64();
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(BigIntTest, PowAndPow2) {
  EXPECT_EQ(BigInt::Pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::Pow2(10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow(BigInt(3), 5), BigInt(243));
  EXPECT_EQ(BigInt::Pow(BigInt(10), 20).ToString(),
            "100000000000000000000");
  EXPECT_EQ(BigInt::Pow(BigInt(7), 0), BigInt(1));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow2(100).BitLength(), 101u);
}

// Property sweep: (a*b)/b == a and (a+b)-b == a over a grid of values
// crossing limb boundaries.
class BigIntPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntPropertyTest, RingAxiomsAcrossLimbBoundaries) {
  const int shift = GetParam();
  BigInt base = BigInt::Pow2(shift);
  for (int64_t da = -2; da <= 2; ++da) {
    for (int64_t db = -2; db <= 2; ++db) {
      BigInt a = base + BigInt(da);
      BigInt b = base + BigInt(db);
      EXPECT_EQ((a + b) - b, a);
      EXPECT_EQ((a - b) + b, a);
      if (!b.is_zero()) {
        EXPECT_EQ((a * b) / b, a);
        BigInt quotient;
        BigInt remainder;
        ASSERT_OK(a.DivMod(b, &quotient, &remainder));
        EXPECT_EQ(quotient * b + remainder, a.Abs());
      }
      EXPECT_EQ(a * b, b * a);
      EXPECT_EQ(a * (b + b), a * b + a * b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LimbBoundaries, BigIntPropertyTest,
                         ::testing::Values(1, 16, 31, 32, 33, 63, 64, 65, 96,
                                           128));

// The single-limb multiply shortcut must agree with the schoolbook
// path at every limb boundary, including carries out of the top limb.
TEST(BigIntTest, SingleLimbMultiplyBoundaries) {
  const uint64_t small_values[] = {1, 2, 0x7fffffff, 0x80000000, 0xffffffff};
  const int shifts[] = {0, 31, 32, 33, 63, 64, 65, 127, 128};
  for (uint64_t s : small_values) {
    BigInt single(static_cast<int64_t>(s));
    for (int shift : shifts) {
      for (int64_t delta = -1; delta <= 1; ++delta) {
        BigInt multi = BigInt::Pow2(shift) + BigInt(delta);
        BigInt product = multi * single;
        EXPECT_EQ(product, single * multi);  // either operand may be short
        if (!single.is_zero()) {
          EXPECT_EQ(product / single, multi)
              << "s=" << s << " shift=" << shift << " delta=" << delta;
          EXPECT_TRUE((product % single).is_zero());
        }
      }
    }
  }
  // Max carry propagation: (2^96 - 1) * (2^32 - 1).
  BigInt all_ones = BigInt::Pow2(96) - BigInt(1);
  BigInt top_limb = BigInt::Pow2(32) - BigInt(1);
  EXPECT_EQ(all_ones * top_limb,
            BigInt::Pow2(128) - BigInt::Pow2(96) - BigInt::Pow2(32) + BigInt(1));
}

// The widened (<= 2 limb) divisor shortcut must match the long-division
// path around the 2^32 and 2^64 divisor boundaries.
TEST(BigIntTest, ShortDivisorBoundaries) {
  BigInt dividend = BigInt::Pow2(200) + BigInt::Pow2(100) + BigInt(12345);
  const int divisor_shifts[] = {1, 31, 32, 33, 63};
  for (int shift : divisor_shifts) {
    for (int64_t delta = -1; delta <= 1; ++delta) {
      BigInt divisor = BigInt::Pow2(shift) + BigInt(delta);
      if (divisor.is_zero()) continue;
      BigInt quotient;
      BigInt remainder;
      ASSERT_OK(dividend.DivMod(divisor, &quotient, &remainder));
      EXPECT_EQ(quotient * divisor + remainder, dividend)
          << "shift=" << shift << " delta=" << delta;
      EXPECT_LT(remainder, divisor);
      EXPECT_FALSE(remainder.is_negative());
    }
  }
  // Divisor exactly at the top of the two-limb range: 2^64 - 1.
  BigInt two_limb_max = BigInt::Pow2(64) - BigInt(1);
  BigInt quotient;
  BigInt remainder;
  ASSERT_OK(dividend.DivMod(two_limb_max, &quotient, &remainder));
  EXPECT_EQ(quotient * two_limb_max + remainder, dividend);
  EXPECT_LT(remainder, two_limb_max);
  // And just past it (2^64 + 1 takes the general path).
  BigInt three_limb = BigInt::Pow2(64) + BigInt(1);
  ASSERT_OK(dividend.DivMod(three_limb, &quotient, &remainder));
  EXPECT_EQ(quotient * three_limb + remainder, dividend);
}

// ---------------------------------------------------------------------
// In-place kernels: shifts, compound assignment, and fused updates.

TEST(BigIntTest, ShlShrBitsBoundaries) {
  // Shift amounts straddling every limb-boundary special case: 0 bits,
  // 31/32/33 (around one limb), 63/64/65 (around two limbs).
  const uint64_t shifts[] = {0, 1, 31, 32, 33, 63, 64, 65, 95, 96, 127};
  for (uint64_t s : shifts) {
    for (int64_t seed : {1, 3, 0x7fffffff, -5}) {
      BigInt value = BigInt(seed) * BigInt::Pow2(17) + BigInt(seed < 0 ? -1 : 1);
      BigInt shifted = value;
      shifted.ShlBits(s);
      EXPECT_EQ(shifted, value * BigInt::Pow2(s)) << "s=" << s;
      // Round trip: (v << s) >> s == v (no bits shifted out).
      shifted.ShrBits(s);
      EXPECT_EQ(shifted, value) << "s=" << s;
    }
  }
}

TEST(BigIntTest, ShrBitsTruncatesTowardZero) {
  BigInt value = BigInt::Pow2(100) + BigInt(7);
  BigInt v = value;
  v.ShrBits(3);  // drops the low 7's bits
  EXPECT_EQ(v, (BigInt::Pow2(100) + BigInt(7)).FloorDiv(BigInt(8)));
  // Shifting out every significant bit yields exactly zero.
  v = BigInt(12345);
  v.ShrBits(14);
  EXPECT_TRUE(v.is_zero());
  v = -BigInt::Pow2(64);
  v.ShrBits(65);
  EXPECT_TRUE(v.is_zero());
  EXPECT_FALSE(v.is_negative());
  // Negative magnitudes shift as magnitudes (sign preserved while
  // nonzero).
  v = BigInt(-40);
  v.ShrBits(2);
  EXPECT_EQ(v, BigInt(-10));
}

TEST(BigIntTest, ShlBitsTopLimbOverflow) {
  // A full top limb shifted by 31 bits must carry into a fresh limb
  // (this is the path a missed top-limb overflow would corrupt).
  BigInt value = BigInt::Pow2(96) - BigInt(1);  // three full limbs
  BigInt v = value;
  v.ShlBits(31);
  EXPECT_EQ(v, value * BigInt::Pow2(31));
  EXPECT_EQ(v.BitLength(), 96u + 31u);
  v = value;
  v.ShlBits(32);  // pure limb shift, no bit spill
  EXPECT_EQ(v, value * BigInt::Pow2(32));
}

TEST(BigIntTest, TrailingZeroBits) {
  EXPECT_EQ(BigInt(0).TrailingZeroBits(), 0u);
  EXPECT_EQ(BigInt(1).TrailingZeroBits(), 0u);
  EXPECT_EQ(BigInt(8).TrailingZeroBits(), 3u);
  EXPECT_EQ(BigInt(-8).TrailingZeroBits(), 3u);
  EXPECT_EQ(BigInt::Pow2(32).TrailingZeroBits(), 32u);
  EXPECT_EQ(BigInt::Pow2(100).TrailingZeroBits(), 100u);
  EXPECT_EQ((BigInt::Pow2(100) + BigInt::Pow2(33)).TrailingZeroBits(), 33u);
}

TEST(BigIntTest, CompoundAssignmentMatchesValueForms) {
  const int shifts[] = {1, 32, 64, 100, 200};
  for (int sa : shifts) {
    for (int sb : shifts) {
      for (int64_t da : {-1, 0, 1}) {
        for (int64_t db : {-1, 0, 1}) {
          BigInt a = BigInt::Pow2(sa) + BigInt(da);
          BigInt b = BigInt::Pow2(sb) + BigInt(db);
          for (const BigInt& x : {a, -a}) {
            for (const BigInt& y : {b, -b}) {
              BigInt t = x;
              t += y;
              EXPECT_EQ(t, x + y);
              t = x;
              t -= y;
              EXPECT_EQ(t, x - y);
              t = x;
              t *= y;
              EXPECT_EQ(t, x * y);
            }
          }
        }
      }
    }
  }
}

TEST(BigIntTest, CompoundAssignmentAliasing) {
  // x += x, x -= x, x *= x must read consistent values even though the
  // in-place kernels mutate this->limbs_ mid-pass.
  for (int shift : {1, 32, 64, 150}) {
    for (int64_t delta : {-1, 0, 1}) {
      BigInt value = BigInt::Pow2(shift) + BigInt(delta);
      for (const BigInt& seed : {value, -value}) {
        BigInt x = seed;
        x += x;
        EXPECT_EQ(x, seed + seed);
        x = seed;
        x -= x;
        EXPECT_TRUE(x.is_zero());
        EXPECT_FALSE(x.is_negative());
        x = seed;
        x *= x;
        EXPECT_EQ(x, seed * seed);
      }
    }
  }
}

TEST(BigIntTest, MulAddSmallMatchesOperators) {
  const int64_t multipliers[] = {0, 1, 2, 1000000000, INT64_MAX, -3};
  const int64_t addends[] = {0, 1, 999999999, INT64_MAX, -7};
  for (int shift : {0, 1, 33, 90}) {
    for (int64_t m : multipliers) {
      for (int64_t add : addends) {
        for (int64_t sign : {1, -1}) {
          BigInt seed = (BigInt::Pow2(shift) + BigInt(5)) * BigInt(sign);
          BigInt expect = seed * BigInt(m) + BigInt(add);
          BigInt got = seed;
          got.MulAddSmall(m, add);
          EXPECT_EQ(got, expect)
              << "shift=" << shift << " m=" << m << " add=" << add
              << " sign=" << sign;
        }
      }
    }
  }
}

TEST(BigIntTest, SubMulFusedAndAliased) {
  BigInt a = BigInt::Pow2(100) + BigInt(17);
  BigInt b = BigInt::Pow2(70) - BigInt(3);
  BigInt c = BigInt(-12345);
  BigInt t = a;
  t.SubMul(b, c);
  EXPECT_EQ(t, a - b * c);
  // b aliases *this.
  t = a;
  t.SubMul(t, c);
  EXPECT_EQ(t, a - a * c);
  // c aliases *this.
  t = a;
  t.SubMul(b, t);
  EXPECT_EQ(t, a - b * a);
  // Both alias: t -= t * t.
  t = a;
  t.SubMul(t, t);
  EXPECT_EQ(t, a - a * a);
}

// Hand-derived Knuth-D add-back vector: with B = 2^64,
//   u = (B/2 - 1)·B^3 + (B/2)·B^2  =  2^255 - 2^192 + 2^191
//   v = (B/2)·B^2 + 1              =  2^191 + 1
// the two-word test accepts qhat = B - 1 which overestimates the true
// quotient digit, forcing the add-back branch (reachable only for
// divisors of >= 3 words; the 2-word estimate is exact below that).
TEST(BigIntTest, KnuthDivModAddBackPath) {
  BigInt u = BigInt::Pow2(255) - BigInt::Pow2(192) + BigInt::Pow2(191);
  BigInt v = BigInt::Pow2(191) + BigInt(1);
  BigInt q;
  BigInt r;
  ASSERT_OK(u.DivMod(v, &q, &r));
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
  EXPECT_FALSE(r.is_negative());
  // The same vector must agree with the reference long division.
  BigInt::ForceReferenceKernels(true);
  BigInt q_ref;
  BigInt r_ref;
  ASSERT_OK(u.DivMod(v, &q_ref, &r_ref));
  BigInt::ForceReferenceKernels(false);
  EXPECT_EQ(q, q_ref);
  EXPECT_EQ(r, r_ref);
}

TEST(BigIntTest, ReferenceKernelToggle) {
  EXPECT_FALSE(BigInt::ReferenceKernelsForced());
  BigInt a = BigInt::Pow2(200) - BigInt(9);
  BigInt b = BigInt::Pow2(130) + BigInt(5);
  BigInt fast_product = a * b;
  BigInt fast_gcd = BigInt::Gcd(a * b, b * BigInt(21));
  BigInt::ForceReferenceKernels(true);
  EXPECT_TRUE(BigInt::ReferenceKernelsForced());
  EXPECT_EQ(a * b, fast_product);
  EXPECT_EQ(BigInt::Gcd(a * b, b * BigInt(21)), fast_gcd);
  BigInt::ForceReferenceKernels(false);
  EXPECT_FALSE(BigInt::ReferenceKernelsForced());
}

TEST(BigIntTest, GcdLargeOperands) {
  // gcd(g*x, g*y) == g for coprime x, y — exercised at sizes that take
  // the Stein loop rather than the native fallback.
  BigInt g = BigInt::Pow2(90) + BigInt(123);
  BigInt x = BigInt::Pow2(80) + BigInt(1);   // odd
  BigInt y = BigInt::Pow2(80) - BigInt(1);   // odd, coprime with x
  BigInt gcd = BigInt::Gcd(g * x, g * y);
  EXPECT_TRUE((g % gcd).is_zero());
  EXPECT_TRUE(((g * x) % gcd).is_zero());
  EXPECT_TRUE(((g * y) % gcd).is_zero());
  // Power-of-two common factors flow through the common_twos path.
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow2(100), BigInt::Pow2(70)),
            BigInt::Pow2(70));
  // Wildly mismatched sizes take the initial balancing division.
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow2(300) + BigInt(2), BigInt(2)), BigInt(2));
}

}  // namespace
}  // namespace xmlverify
