#include "base/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-7).ToString(), "-7");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* text :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-999999999999999999999999"}) {
    ASSERT_OK_AND_ASSIGN(BigInt value, BigInt::FromString(text));
    EXPECT_EQ(value.ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  ASSERT_OK_AND_ASSIGN(BigInt value, BigInt::FromString("-0"));
  EXPECT_EQ(value, BigInt(0));
  EXPECT_FALSE(value.is_negative());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::Pow2(64) - BigInt(1);
  EXPECT_EQ((a + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SignedArithmetic) {
  EXPECT_EQ(BigInt(5) + BigInt(-8), BigInt(-3));
  EXPECT_EQ(BigInt(-5) + BigInt(-8), BigInt(-13));
  EXPECT_EQ(BigInt(5) - BigInt(8), BigInt(-3));
  EXPECT_EQ(BigInt(-5) * BigInt(8), BigInt(-40));
  EXPECT_EQ(BigInt(-5) * BigInt(-8), BigInt(40));
  EXPECT_EQ(BigInt(0) * BigInt(-8), BigInt(0));
}

TEST(BigIntTest, MultiplicationLarge) {
  ASSERT_OK_AND_ASSIGN(BigInt a,
                       BigInt::FromString("123456789123456789123456789"));
  ASSERT_OK_AND_ASSIGN(BigInt b, BigInt::FromString("987654321987654321"));
  EXPECT_EQ((a * b).ToString(),
            "121932631356500531469135800347203169112635269");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
}

TEST(BigIntTest, FloorAndCeilDivision) {
  EXPECT_EQ(BigInt(7).FloorDiv(BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt(-7).FloorDiv(BigInt(2)), BigInt(-4));
  EXPECT_EQ(BigInt(7).CeilDiv(BigInt(2)), BigInt(4));
  EXPECT_EQ(BigInt(-7).CeilDiv(BigInt(2)), BigInt(-3));
  EXPECT_EQ(BigInt(6).FloorDiv(BigInt(2)), BigInt(3));
  EXPECT_EQ(BigInt(6).CeilDiv(BigInt(2)), BigInt(3));
}

TEST(BigIntTest, DivModLargeRoundTrip) {
  ASSERT_OK_AND_ASSIGN(BigInt a,
                       BigInt::FromString("340282366920938463463374607431768211455"));
  ASSERT_OK_AND_ASSIGN(BigInt b, BigInt::FromString("18446744073709551629"));
  BigInt quotient;
  BigInt remainder;
  ASSERT_OK(a.DivMod(b, &quotient, &remainder));
  EXPECT_EQ(quotient * b + remainder, a);
  EXPECT_TRUE(remainder < b);
}

TEST(BigIntTest, DivModByZeroIsAnErrorNotACrash) {
  BigInt quotient;
  BigInt remainder;
  Status status = BigInt(42).DivMod(BigInt(0), &quotient, &remainder);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The operator forms degrade to zero instead of aborting.
  EXPECT_EQ(BigInt(42) / BigInt(0), BigInt(0));
  EXPECT_EQ(BigInt(42) % BigInt(0), BigInt(0));
  EXPECT_EQ(BigInt(42).FloorDiv(BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt(42).CeilDiv(BigInt(0)), BigInt(0));
}

TEST(BigIntTest, GcdMatchesEuclid) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(7), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, CompareTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::Pow2(100));
  EXPECT_LT(-BigInt::Pow2(100), BigInt(-1));
}

TEST(BigIntTest, FitsInt64Boundaries) {
  EXPECT_TRUE(BigInt(INT64_MAX).FitsInt64());
  EXPECT_TRUE(BigInt(INT64_MIN).FitsInt64());
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).FitsInt64());
  EXPECT_TRUE((BigInt(INT64_MIN) + BigInt(1)).FitsInt64());
  ASSERT_OK_AND_ASSIGN(int64_t min64, BigInt(INT64_MIN).TryToInt64());
  EXPECT_EQ(min64, INT64_MIN);
  ASSERT_OK_AND_ASSIGN(int64_t max64, BigInt(INT64_MAX).TryToInt64());
  EXPECT_EQ(max64, INT64_MAX);
  Result<int64_t> overflow = (BigInt(INT64_MAX) + BigInt(1)).TryToInt64();
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(BigIntTest, PowAndPow2) {
  EXPECT_EQ(BigInt::Pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::Pow2(10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow(BigInt(3), 5), BigInt(243));
  EXPECT_EQ(BigInt::Pow(BigInt(10), 20).ToString(),
            "100000000000000000000");
  EXPECT_EQ(BigInt::Pow(BigInt(7), 0), BigInt(1));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow2(100).BitLength(), 101u);
}

// Property sweep: (a*b)/b == a and (a+b)-b == a over a grid of values
// crossing limb boundaries.
class BigIntPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BigIntPropertyTest, RingAxiomsAcrossLimbBoundaries) {
  const int shift = GetParam();
  BigInt base = BigInt::Pow2(shift);
  for (int64_t da = -2; da <= 2; ++da) {
    for (int64_t db = -2; db <= 2; ++db) {
      BigInt a = base + BigInt(da);
      BigInt b = base + BigInt(db);
      EXPECT_EQ((a + b) - b, a);
      EXPECT_EQ((a - b) + b, a);
      if (!b.is_zero()) {
        EXPECT_EQ((a * b) / b, a);
        BigInt quotient;
        BigInt remainder;
        ASSERT_OK(a.DivMod(b, &quotient, &remainder));
        EXPECT_EQ(quotient * b + remainder, a.Abs());
      }
      EXPECT_EQ(a * b, b * a);
      EXPECT_EQ(a * (b + b), a * b + a * b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LimbBoundaries, BigIntPropertyTest,
                         ::testing::Values(1, 16, 31, 32, 33, 63, 64, 65, 96,
                                           128));

// The single-limb multiply shortcut must agree with the schoolbook
// path at every limb boundary, including carries out of the top limb.
TEST(BigIntTest, SingleLimbMultiplyBoundaries) {
  const uint64_t small_values[] = {1, 2, 0x7fffffff, 0x80000000, 0xffffffff};
  const int shifts[] = {0, 31, 32, 33, 63, 64, 65, 127, 128};
  for (uint64_t s : small_values) {
    BigInt single(static_cast<int64_t>(s));
    for (int shift : shifts) {
      for (int64_t delta = -1; delta <= 1; ++delta) {
        BigInt multi = BigInt::Pow2(shift) + BigInt(delta);
        BigInt product = multi * single;
        EXPECT_EQ(product, single * multi);  // either operand may be short
        if (!single.is_zero()) {
          EXPECT_EQ(product / single, multi)
              << "s=" << s << " shift=" << shift << " delta=" << delta;
          EXPECT_TRUE((product % single).is_zero());
        }
      }
    }
  }
  // Max carry propagation: (2^96 - 1) * (2^32 - 1).
  BigInt all_ones = BigInt::Pow2(96) - BigInt(1);
  BigInt top_limb = BigInt::Pow2(32) - BigInt(1);
  EXPECT_EQ(all_ones * top_limb,
            BigInt::Pow2(128) - BigInt::Pow2(96) - BigInt::Pow2(32) + BigInt(1));
}

// The widened (<= 2 limb) divisor shortcut must match the long-division
// path around the 2^32 and 2^64 divisor boundaries.
TEST(BigIntTest, ShortDivisorBoundaries) {
  BigInt dividend = BigInt::Pow2(200) + BigInt::Pow2(100) + BigInt(12345);
  const int divisor_shifts[] = {1, 31, 32, 33, 63};
  for (int shift : divisor_shifts) {
    for (int64_t delta = -1; delta <= 1; ++delta) {
      BigInt divisor = BigInt::Pow2(shift) + BigInt(delta);
      if (divisor.is_zero()) continue;
      BigInt quotient;
      BigInt remainder;
      ASSERT_OK(dividend.DivMod(divisor, &quotient, &remainder));
      EXPECT_EQ(quotient * divisor + remainder, dividend)
          << "shift=" << shift << " delta=" << delta;
      EXPECT_LT(remainder, divisor);
      EXPECT_FALSE(remainder.is_negative());
    }
  }
  // Divisor exactly at the top of the two-limb range: 2^64 - 1.
  BigInt two_limb_max = BigInt::Pow2(64) - BigInt(1);
  BigInt quotient;
  BigInt remainder;
  ASSERT_OK(dividend.DivMod(two_limb_max, &quotient, &remainder));
  EXPECT_EQ(quotient * two_limb_max + remainder, dividend);
  EXPECT_LT(remainder, two_limb_max);
  // And just past it (2^64 + 1 takes the general path).
  BigInt three_limb = BigInt::Pow2(64) + BigInt(1);
  ASSERT_OK(dividend.DivMod(three_limb, &quotient, &remainder));
  EXPECT_EQ(quotient * three_limb + remainder, dividend);
}

}  // namespace
}  // namespace xmlverify
