// Unit tests for the trace/stats layer: span nesting and timing,
// registry thread-safety, report well-formedness — plus an end-to-end
// integration test running `xmlvc --stats check` on the paper's
// country/province specification and validating the emitted JSON.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "trace/sinks.h"

namespace xmlverify {
namespace {

// Records every event for structural assertions.
class RecordingSink : public TraceSink {
 public:
  struct Event {
    std::string kind;
    std::string name;
    int depth;
    int64_t value;  // nanos for span_end, delta for counter
  };
  std::vector<Event> events;

  void SpanBegin(std::string_view name, int depth) override {
    events.push_back({"begin", std::string(name), depth, 0});
  }
  void SpanEnd(std::string_view name, int depth, int64_t nanos) override {
    events.push_back({"end", std::string(name), depth, nanos});
  }
  void CounterAdd(std::string_view name, int64_t delta, int depth) override {
    events.push_back({"counter", std::string(name), depth, delta});
  }
};

TEST(TraceSpanTest, DisabledWithoutSession) {
  EXPECT_FALSE(trace::Enabled());
  // All instrumentation must be inert: no crash, no state.
  trace::Count("ghost/counter", 7);
  trace::Max("ghost/max", 9);
  TraceSpan span("ghost/span");
  EXPECT_FALSE(trace::Enabled());
}

TEST(TraceSpanTest, NestingDepthsAndOrdering) {
  StatsRegistry registry;
  RecordingSink sink;
  {
    TraceSession session(&registry, &sink);
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      trace::Count("leaf", 2);
    }
  }
  ASSERT_EQ(sink.events.size(), 5u);
  EXPECT_EQ(sink.events[0].kind, "begin");
  EXPECT_EQ(sink.events[0].name, "outer");
  EXPECT_EQ(sink.events[0].depth, 0);
  EXPECT_EQ(sink.events[1].kind, "begin");
  EXPECT_EQ(sink.events[1].name, "inner");
  EXPECT_EQ(sink.events[1].depth, 1);
  EXPECT_EQ(sink.events[2].kind, "counter");
  EXPECT_EQ(sink.events[2].name, "leaf");
  EXPECT_EQ(sink.events[2].depth, 2);
  EXPECT_EQ(sink.events[3].kind, "end");
  EXPECT_EQ(sink.events[3].name, "inner");
  EXPECT_EQ(sink.events[3].depth, 1);
  EXPECT_EQ(sink.events[4].kind, "end");
  EXPECT_EQ(sink.events[4].name, "outer");
  EXPECT_EQ(sink.events[4].depth, 0);
}

TEST(TraceSpanTest, TimingAccumulatesIntoRegistry) {
  StatsRegistry registry;
  int64_t inner_nanos = 0;
  {
    TraceSession session(&registry);
    TraceSpan outer("outer");
    for (int i = 0; i < 3; ++i) {
      TraceSpan inner("inner");
      // Do a little work so the clock advances on coarse timers.
      volatile int sink_value = 0;
      for (int j = 0; j < 10000; ++j) sink_value = sink_value + j;
    }
    auto phases = registry.Phases();
    ASSERT_TRUE(phases.count("inner"));
    inner_nanos = phases["inner"].total_nanos;
    EXPECT_EQ(phases["inner"].count, 3);
    EXPECT_EQ(phases.count("outer"), 0u);  // still open
  }
  auto phases = registry.Phases();
  ASSERT_TRUE(phases.count("outer"));
  EXPECT_EQ(phases["outer"].count, 1);
  // The outer span encloses the inner ones.
  EXPECT_GE(phases["outer"].total_nanos, inner_nanos);
}

TEST(TraceSpanTest, SessionRestoresPreviousTarget) {
  StatsRegistry first;
  StatsRegistry second;
  TraceSession outer_session(&first);
  {
    TraceSession inner_session(&second);
    trace::Count("which", 1);
  }
  trace::Count("which", 10);
  EXPECT_EQ(second.Counter("which"), 1);
  EXPECT_EQ(first.Counter("which"), 10);
}

TEST(StatsRegistryTest, AddAndMax) {
  StatsRegistry registry;
  registry.Add("a", 5);
  registry.Add("a", 7);
  EXPECT_EQ(registry.Counter("a"), 12);
  registry.RecordMax("m", 3);
  registry.RecordMax("m", 1);
  EXPECT_EQ(registry.Counter("m"), 3);
  registry.RecordMax("zero", 0);  // must exist even at zero
  EXPECT_EQ(registry.Counters().count("zero"), 1u);
  EXPECT_EQ(registry.Counter("absent"), 0);
}

TEST(StatsRegistryTest, ThreadSafety) {
  StatsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Each thread gets its own session against the shared registry.
      TraceSession session(&registry);
      for (int i = 0; i < kIncrements; ++i) {
        trace::Count("shared/counter");
        trace::Max("shared/max", t * kIncrements + i);
        registry.AddPhase("shared/phase", 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.Counter("shared/counter"),
            int64_t{kThreads} * kIncrements);
  EXPECT_EQ(registry.Counter("shared/max"),
            int64_t{kThreads - 1} * kIncrements + kIncrements - 1);
  auto phases = registry.Phases();
  EXPECT_EQ(phases["shared/phase"].count, int64_t{kThreads} * kIncrements);
  EXPECT_EQ(phases["shared/phase"].total_nanos,
            int64_t{kThreads} * kIncrements);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON checker (objects/arrays/strings/
// numbers/bools/null), enough to assert report well-formedness
// without a JSON library dependency.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(StatsRegistryTest, ToJsonIsWellFormed) {
  StatsRegistry registry;
  EXPECT_TRUE(JsonChecker(registry.ToJson()).Valid());  // empty report
  registry.Add("solver/lp_pivots", 42);
  registry.Add("weird\"name\\with\ncontrol", 1);
  registry.AddPhase("check/solve", 1234567);
  std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"solver/lp_pivots\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"check/solve\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\": 1234567"), std::string::npos);
}

TEST(SinksTest, JsonLinesAreEachWellFormed) {
  std::ostringstream out;
  StatsRegistry registry;
  JsonTraceSink sink(out);
  {
    TraceSession session(&registry, &sink);
    TraceSpan span("check");
    trace::Count("solver/nodes", 3);
  }
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);  // begin, counter, end
}

TEST(SinksTest, TextSinkIndentsByDepth) {
  std::ostringstream out;
  StatsRegistry registry;
  TextTraceSink sink(out);
  {
    TraceSession session(&registry, &sink);
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  std::string text = out.str();
  EXPECT_NE(text.find("> outer"), std::string::npos);
  EXPECT_NE(text.find(".   > inner"), std::string::npos);
  EXPECT_NE(text.find(".   < inner"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: the real CLI on the paper's country/province example
// (examples/specs/geography.xvc, an inconsistent specification) must
// emit a well-formed JSON report whose solver and encoder counters are
// populated. XMLVC_BINARY_PATH / XMLVC_SPECS_DIR come from CMake.

#if defined(XMLVC_BINARY_PATH) && defined(XMLVC_SPECS_DIR)

std::string RunAndCapture(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  size_t read;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, read);
  }
  *exit_code = pclose(pipe);
  return output;
}

TEST(XmlvcStatsIntegrationTest, StatsCheckEmitsPopulatedJsonReport) {
  int exit_code = 0;
  std::string output = RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " --stats check " + XMLVC_SPECS_DIR +
          "/geography.xvc 2>/dev/null",
      &exit_code);
  // geography.xvc is the paper's inconsistent country/province spec:
  // the CLI exits 1 and announces INCONSISTENT before the report.
  EXPECT_EQ(WEXITSTATUS(exit_code), 1) << output;
  ASSERT_NE(output.find("INCONSISTENT"), std::string::npos) << output;

  // The JSON report starts at the first line-initial '{' (verdict
  // notes may mention constraint classes like RC_{K,FK} before it).
  size_t brace = output.find("\n{");
  ASSERT_NE(brace, std::string::npos) << output;
  std::string json = output.substr(brace + 1);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;

  // Phase timings for the span chain, solver/encoder counters, and
  // the search-depth high-water marks must all be present.
  for (const char* field :
       {"\"phases\"", "\"counters\"", "\"check\"", "\"check/classify\"",
        "\"check/encode\"", "\"check/solve\"", "\"solver/lp_pivots\"",
        "\"solver/nodes\"", "\"encoder/flow/variables\"",
        "\"encoder/flow/constraints\"", "\"solver/max_branch_depth\"",
        "\"hierarchical/max_context_depth\""}) {
    EXPECT_NE(json.find(field), std::string::npos)
        << "missing " << field << " in:\n" << json;
  }

  // An inconsistent verdict cannot be reached without solver work.
  auto counter_at_least_one = [&json](const std::string& name) {
    size_t at = json.find("\"" + name + "\": ");
    ASSERT_NE(at, std::string::npos) << json;
    at += name.size() + 4;
    int64_t value = std::strtoll(json.c_str() + at, nullptr, 10);
    EXPECT_GE(value, 1) << name << " should be nonzero in:\n" << json;
  };
  counter_at_least_one("solver/lp_pivots");
  counter_at_least_one("solver/nodes");
  counter_at_least_one("encoder/flow/variables");
  counter_at_least_one("encoder/flow/constraints");
  counter_at_least_one("hierarchical/scopes_solved");
}

TEST(XmlvcStatsIntegrationTest, NoFlagsMeansNoReport) {
  int exit_code = 0;
  std::string output = RunAndCapture(
      std::string(XMLVC_BINARY_PATH) + " check " + XMLVC_SPECS_DIR +
          "/geography.xvc 2>/dev/null",
      &exit_code);
  EXPECT_EQ(WEXITSTATUS(exit_code), 1);
  EXPECT_EQ(output.find("\n{"), std::string::npos) << output;
  EXPECT_EQ(output.find("\"counters\""), std::string::npos) << output;
}

#endif  // XMLVC_BINARY_PATH && XMLVC_SPECS_DIR

}  // namespace
}  // namespace xmlverify
