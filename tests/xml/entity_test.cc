// Entity decoding in the XML document parser: named entities, numeric
// character references, serialize/re-parse round trips, and rejection
// of malformed references.
#include <gtest/gtest.h>

#include <string>

#include "tests/test_util.h"
#include "xml/dtd_parser.h"
#include "xml/tree.h"
#include "xml/xml_parser.h"

namespace xmlverify {
namespace {

constexpr char kDtd[] = R"(
<!ELEMENT r (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item v>
)";

Result<std::string> ParseAttr(const Dtd& dtd, const std::string& value) {
  ASSIGN_OR_RETURN(XmlTree tree,
                   ParseXmlDocument("<r><item v=\"" + value + "\"></item></r>",
                                    dtd));
  ASSIGN_OR_RETURN(int item, dtd.TypeId("item"));
  return tree.Attribute(tree.ElementsOfType(item)[0], "v");
}

Result<std::string> ParseText(const Dtd& dtd, const std::string& text) {
  ASSIGN_OR_RETURN(XmlTree tree,
                   ParseXmlDocument("<r><item>" + text + "</item></r>", dtd));
  ASSIGN_OR_RETURN(int item, dtd.TypeId("item"));
  return tree.TextOf(tree.ChildrenOf(tree.ElementsOfType(item)[0])[0]);
}

TEST(EntityTest, NamedEntitiesDecodeInAttributesAndText) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kDtd));
  ASSERT_OK_AND_ASSIGN(std::string attr,
                       ParseAttr(dtd, "&lt;a&gt; &amp; &quot;b&quot;&apos;"));
  EXPECT_EQ(attr, "<a> & \"b\"'");
  ASSERT_OK_AND_ASSIGN(std::string text, ParseText(dtd, "x &amp;&lt; y"));
  EXPECT_EQ(text, "x &< y");
}

TEST(EntityTest, NumericReferencesDecimalAndHex) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kDtd));
  ASSERT_OK_AND_ASSIGN(std::string decimal, ParseAttr(dtd, "&#65;&#66;"));
  EXPECT_EQ(decimal, "AB");
  ASSERT_OK_AND_ASSIGN(std::string hex, ParseAttr(dtd, "&#x41;&#X62;"));
  EXPECT_EQ(hex, "Ab");
  // Multi-byte UTF-8: U+00E9 (2 bytes), U+20AC (3), U+1F600 (4).
  ASSERT_OK_AND_ASSIGN(std::string utf8,
                       ParseAttr(dtd, "&#233;&#x20AC;&#x1F600;"));
  EXPECT_EQ(utf8, "\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(EntityTest, EscapeThenParseRoundTrips) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kDtd));
  // Build a tree whose values use every character the serializer
  // escapes, serialize it, and re-parse: values must survive exactly.
  const std::string nasty = "<tag> & \"quoted\" 'single'";
  ASSERT_OK_AND_ASSIGN(int item_type, dtd.TypeId("item"));
  XmlTree tree(dtd.root());
  NodeId item = tree.AddElement(tree.root(), item_type);
  tree.SetAttribute(item, "v", nasty);
  tree.AddText(item, nasty);
  ASSERT_OK_AND_ASSIGN(XmlTree reparsed,
                       ParseXmlDocument(tree.ToXml(dtd), dtd));
  NodeId reparsed_item = reparsed.ElementsOfType(item_type)[0];
  ASSERT_OK_AND_ASSIGN(std::string attr,
                       reparsed.Attribute(reparsed_item, "v"));
  EXPECT_EQ(attr, nasty);
  EXPECT_EQ(reparsed.TextOf(reparsed.ChildrenOf(reparsed_item)[0]), nasty);
}

TEST(EntityTest, MalformedReferencesAreRejected) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kDtd));
  // A bare ampersand is not XML: it must be an error, not passed
  // through silently (attribute values feed key comparisons).
  EXPECT_FALSE(ParseAttr(dtd, "a & b").ok());
  EXPECT_FALSE(ParseAttr(dtd, "trailing &").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&unknown;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&#;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&#x;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&#12a;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&#xZZ;").ok());
  EXPECT_FALSE(ParseAttr(dtd, "&#0;").ok());          // U+0000
  EXPECT_FALSE(ParseAttr(dtd, "&#xD800;").ok());      // surrogate
  EXPECT_FALSE(ParseAttr(dtd, "&#x110000;").ok());    // beyond Unicode
  EXPECT_FALSE(ParseText(dtd, "a &amp b").ok());      // unterminated
  EXPECT_FALSE(ParseText(dtd, "a & b").ok());
}

TEST(EntityTest, BoundaryCodePointsAccepted) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kDtd));
  ASSERT_OK_AND_ASSIGN(std::string low, ParseAttr(dtd, "&#1;"));
  EXPECT_EQ(low, std::string(1, '\x01'));
  // Just below and above the surrogate block, and the Unicode maximum.
  EXPECT_TRUE(ParseAttr(dtd, "&#xD7FF;").ok());
  EXPECT_TRUE(ParseAttr(dtd, "&#xE000;").ok());
  EXPECT_TRUE(ParseAttr(dtd, "&#x10FFFF;").ok());
}

}  // namespace
}  // namespace xmlverify
