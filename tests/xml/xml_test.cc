// DTD parser, XML tree, document parser and validator tests.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dtd_parser.h"
#include "xml/tree.h"
#include "xml/validator.h"
#include "xml/xml_parser.h"

namespace xmlverify {
namespace {

constexpr char kBooksDtd[] = R"(
<!ELEMENT library (book+)>
<!ELEMENT book (title, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author EMPTY>
<!ATTLIST book isbn>
<!ATTLIST author name>
)";

TEST(DtdParserTest, ParsesDeclarations) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  EXPECT_EQ(dtd.TypeName(dtd.root()), "library");
  ASSERT_OK_AND_ASSIGN(int book, dtd.TypeId("book"));
  EXPECT_TRUE(dtd.HasAttribute(book, "isbn"));
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  const Dfa& dfa = dtd.ContentDfa(title);
  EXPECT_TRUE(dfa.Accepts({dtd.pcdata_symbol()}));
}

TEST(DtdParserTest, UndeclaredReferencedTypesDefaultToEmpty) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd("<!ELEMENT r (leaf+)>"));
  ASSERT_OK_AND_ASSIGN(int leaf, dtd.TypeId("leaf"));
  EXPECT_TRUE(dtd.ContentDfa(leaf).Accepts({}));
}

TEST(DtdParserTest, RootDirectiveOverridesFirstElement) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(R"(
root top
<!ELEMENT inner EMPTY>
<!ELEMENT top (inner)>
)"));
  EXPECT_EQ(dtd.TypeName(dtd.root()), "top");
}

TEST(DtdParserTest, CommentsAreSkipped) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(R"(
<!-- an XML comment -->
<!ELEMENT r (a+)>   /* paper-style comment
<!ELEMENT a EMPTY>
)"));
  EXPECT_EQ(dtd.num_element_types(), 2);
}

TEST(DtdParserTest, Errors) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT r (a").ok());
  EXPECT_FALSE(ParseDtd("<!WEIRD x>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT r ANY>").ok());
}

TEST(XmlTreeTest, StructureAndQueries) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  ASSERT_OK_AND_ASSIGN(int book, dtd.TypeId("book"));
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  ASSERT_OK_AND_ASSIGN(int author, dtd.TypeId("author"));

  XmlTree tree(dtd.root());
  NodeId b1 = tree.AddElement(tree.root(), book);
  NodeId t1 = tree.AddElement(b1, title);
  tree.AddText(t1, "Foundations of Databases");
  NodeId a1 = tree.AddElement(b1, author);
  tree.SetAttribute(b1, "isbn", "0-201-53771-0");
  tree.SetAttribute(a1, "name", "Abiteboul");

  EXPECT_EQ(tree.ElementsOfType(book), std::vector<NodeId>{b1});
  EXPECT_TRUE(tree.IsDescendant(tree.root(), a1));
  EXPECT_TRUE(tree.IsDescendant(b1, t1));
  EXPECT_FALSE(tree.IsDescendant(t1, b1));
  EXPECT_FALSE(tree.IsDescendant(a1, a1));

  std::vector<int> path = tree.PathFromRoot(a1);
  EXPECT_EQ(path, (std::vector<int>{dtd.root(), book, author}));

  ASSERT_OK_AND_ASSIGN(std::string isbn, tree.Attribute(b1, "isbn"));
  EXPECT_EQ(isbn, "0-201-53771-0");
  EXPECT_FALSE(tree.Attribute(b1, "none").ok());
}

TEST(ValidatorTest, AcceptsConformingTree) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  ASSERT_OK_AND_ASSIGN(int book, dtd.TypeId("book"));
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  XmlTree tree(dtd.root());
  NodeId b = tree.AddElement(tree.root(), book);
  tree.SetAttribute(b, "isbn", "x");
  NodeId t = tree.AddElement(b, title);
  tree.AddText(t, "T");
  EXPECT_OK(CheckConforms(tree, dtd));
}

TEST(ValidatorTest, RejectsBadChildren) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  XmlTree tree(dtd.root());
  // library with no book child violates book+.
  EXPECT_FALSE(Conforms(tree, dtd));
}

TEST(ValidatorTest, RejectsMissingAndUndeclaredAttributes) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  ASSERT_OK_AND_ASSIGN(int book, dtd.TypeId("book"));
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  XmlTree tree(dtd.root());
  NodeId b = tree.AddElement(tree.root(), book);
  NodeId t = tree.AddElement(b, title);
  tree.AddText(t, "T");
  // Missing isbn.
  EXPECT_FALSE(Conforms(tree, dtd));
  tree.SetAttribute(b, "isbn", "x");
  EXPECT_TRUE(Conforms(tree, dtd));
  tree.SetAttribute(b, "undeclared", "y");
  EXPECT_FALSE(Conforms(tree, dtd));
}

TEST(XmlParserTest, ParsesDocument) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  constexpr char kDoc[] = R"(<?xml version="1.0"?>
<library>
  <!-- comment -->
  <book isbn="1-55860-622-X">
    <title>Data on the Web &amp; beyond</title>
    <author name='Buneman'/>
  </book>
</library>)";
  ASSERT_OK_AND_ASSIGN(XmlTree tree, ParseXmlDocument(kDoc, dtd));
  EXPECT_OK(CheckConforms(tree, dtd));
  ASSERT_OK_AND_ASSIGN(int author, dtd.TypeId("author"));
  std::vector<NodeId> authors = tree.ElementsOfType(author);
  ASSERT_EQ(authors.size(), 1u);
  ASSERT_OK_AND_ASSIGN(std::string name, tree.Attribute(authors[0], "name"));
  EXPECT_EQ(name, "Buneman");
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  NodeId title_node = tree.ElementsOfType(title)[0];
  ASSERT_EQ(tree.ChildrenOf(title_node).size(), 1u);
  EXPECT_EQ(tree.TextOf(tree.ChildrenOf(title_node)[0]),
            "Data on the Web & beyond");
}

TEST(XmlParserTest, Errors) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  EXPECT_FALSE(ParseXmlDocument("<book/>", dtd).ok());        // wrong root
  EXPECT_FALSE(ParseXmlDocument("<library>", dtd).ok());      // unterminated
  EXPECT_FALSE(ParseXmlDocument("<library></book>", dtd).ok());
  EXPECT_FALSE(ParseXmlDocument("<library><unknown/></library>", dtd).ok());
  EXPECT_FALSE(
      ParseXmlDocument("<library></library><library></library>", dtd).ok());
}

TEST(XmlSerializationTest, EscapesSpecialCharacters) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  ASSERT_OK_AND_ASSIGN(int book, dtd.TypeId("book"));
  ASSERT_OK_AND_ASSIGN(int title, dtd.TypeId("title"));
  XmlTree tree(dtd.root());
  NodeId b = tree.AddElement(tree.root(), book);
  tree.SetAttribute(b, "isbn", "a<b>&\"c'");
  NodeId t = tree.AddElement(b, title);
  tree.AddText(t, "x & y < z");
  std::string serialized = tree.ToXml(dtd);
  EXPECT_EQ(serialized.find("a<b>"), std::string::npos);  // escaped
  ASSERT_OK_AND_ASSIGN(XmlTree reparsed, ParseXmlDocument(serialized, dtd));
  ASSERT_OK_AND_ASSIGN(std::string isbn,
                       reparsed.Attribute(reparsed.ElementsOfType(book)[0],
                                          "isbn"));
  EXPECT_EQ(isbn, "a<b>&\"c'");
  NodeId new_title = reparsed.ElementsOfType(title)[0];
  EXPECT_EQ(reparsed.TextOf(reparsed.ChildrenOf(new_title)[0]),
            "x & y < z");
}

TEST(XmlSerializationTest, RoundTrip) {
  ASSERT_OK_AND_ASSIGN(Dtd dtd, ParseDtd(kBooksDtd));
  constexpr char kDoc[] =
      R"(<library><book isbn="i"><title>T</title></book></library>)";
  ASSERT_OK_AND_ASSIGN(XmlTree tree, ParseXmlDocument(kDoc, dtd));
  std::string serialized = tree.ToXml(dtd);
  ASSERT_OK_AND_ASSIGN(XmlTree reparsed, ParseXmlDocument(serialized, dtd));
  EXPECT_EQ(reparsed.num_nodes(), tree.num_nodes());
  EXPECT_OK(CheckConforms(reparsed, dtd));
}

}  // namespace
}  // namespace xmlverify
