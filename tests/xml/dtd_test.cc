#include "xml/dtd.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace xmlverify {
namespace {

TEST(DtdBuilderTest, BasicConstruction) {
  Dtd::Builder builder({"r", "a", "b"}, "r");
  builder.SetContent("r", "a,b*");
  builder.AddAttribute("a", "id");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  EXPECT_EQ(dtd.num_element_types(), 3);
  EXPECT_EQ(dtd.TypeName(dtd.root()), "r");
  ASSERT_OK_AND_ASSIGN(int a, dtd.TypeId("a"));
  EXPECT_TRUE(dtd.HasAttribute(a, "id"));
  EXPECT_FALSE(dtd.HasAttribute(a, "other"));
  EXPECT_EQ(dtd.ChildTypes(dtd.root()).size(), 2u);
}

TEST(DtdBuilderTest, RejectsRootInContentModel) {
  Dtd::Builder builder({"r", "a"}, "r");
  builder.SetContent("r", "a");
  builder.SetContent("a", "r");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DtdBuilderTest, RejectsDisconnectedTypes) {
  Dtd::Builder builder({"r", "a", "orphan"}, "r");
  builder.SetContent("r", "a");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DtdBuilderTest, RejectsUnknownNamesAndDuplicates) {
  {
    Dtd::Builder builder({"r", "a", "a"}, "r");
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    Dtd::Builder builder({"r"}, "r");
    builder.SetContent("missing", "%");
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    Dtd::Builder builder({"r", "a"}, "nope");
    EXPECT_FALSE(builder.Build().ok());
  }
}

TEST(DtdTest, RecursionDetection) {
  Dtd::Builder builder({"r", "a", "b"}, "r");
  builder.SetContent("r", "a");
  builder.SetContent("a", "b|%");
  builder.SetContent("b", "a");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  EXPECT_TRUE(dtd.IsRecursive());
}

TEST(DtdTest, NonRecursiveDepth) {
  Dtd::Builder builder({"r", "a", "b", "c"}, "r");
  builder.SetContent("r", "a");
  builder.SetContent("a", "b,c");
  builder.SetContent("b", "c*");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  EXPECT_FALSE(dtd.IsRecursive());
  // r -> a -> b -> c has 4 types on the longest path.
  ASSERT_OK_AND_ASSIGN(int depth, dtd.Depth());
  EXPECT_EQ(depth, 4);
}

TEST(DtdTest, DepthUndefinedForRecursive) {
  Dtd::Builder builder({"r", "a"}, "r");
  builder.SetContent("r", "a");
  builder.SetContent("a", "a|%");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  EXPECT_TRUE(dtd.IsRecursive());
  EXPECT_FALSE(dtd.Depth().ok());
}

TEST(DtdTest, NoStarDetection) {
  Dtd::Builder star({"r", "a"}, "r");
  star.SetContent("r", "a*");
  ASSERT_OK_AND_ASSIGN(Dtd with_star, star.Build());
  EXPECT_FALSE(with_star.IsNoStar());

  Dtd::Builder plain({"r", "a"}, "r");
  plain.SetContent("r", "a,(a|%)");
  ASSERT_OK_AND_ASSIGN(Dtd no_star, plain.Build());
  EXPECT_TRUE(no_star.IsNoStar());
}

TEST(DtdTest, ContentDfaMatchesModel) {
  Dtd::Builder builder({"r", "a", "b"}, "r");
  builder.SetContent("r", "(a|b)*,a");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  ASSERT_OK_AND_ASSIGN(int a, dtd.TypeId("a"));
  ASSERT_OK_AND_ASSIGN(int b, dtd.TypeId("b"));
  const Dfa& dfa = dtd.ContentDfa(dtd.root());
  EXPECT_TRUE(dfa.Accepts({a}));
  EXPECT_TRUE(dfa.Accepts({b, b, a}));
  EXPECT_FALSE(dfa.Accepts({a, b}));
  EXPECT_FALSE(dfa.Accepts({}));
}

TEST(DtdTest, PcdataInContent) {
  Dtd::Builder builder({"r", "a"}, "r");
  builder.SetContent("r", "a");
  builder.SetContent("a", "#PCDATA");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  ASSERT_OK_AND_ASSIGN(int a, dtd.TypeId("a"));
  const Dfa& dfa = dtd.ContentDfa(a);
  EXPECT_TRUE(dfa.Accepts({dtd.pcdata_symbol()}));
  EXPECT_FALSE(dfa.Accepts({a}));
}

TEST(DtdTest, SatisfiabilityViaProductivity) {
  // <!ELEMENT a (a)>: a is unproductive, so any DTD forcing an `a`
  // has no finite conforming tree.
  Dtd::Builder doomed({"r", "a"}, "r");
  doomed.SetContent("r", "a");
  doomed.SetContent("a", "a");
  ASSERT_OK_AND_ASSIGN(Dtd unsat, doomed.Build());
  EXPECT_FALSE(unsat.IsSatisfiable());

  // With an escape hatch the DTD becomes satisfiable.
  Dtd::Builder escapable({"r", "a"}, "r");
  escapable.SetContent("r", "a");
  escapable.SetContent("a", "a|%");
  ASSERT_OK_AND_ASSIGN(Dtd sat, escapable.Build());
  EXPECT_TRUE(sat.IsSatisfiable());

  // A star over an unproductive type is fine (zero repetitions).
  Dtd::Builder starred({"r", "a"}, "r");
  starred.SetContent("r", "a*");
  starred.SetContent("a", "a");
  ASSERT_OK_AND_ASSIGN(Dtd star_sat, starred.Build());
  EXPECT_TRUE(star_sat.IsSatisfiable());

  // Mutual recursion without a base case.
  Dtd::Builder mutual({"r", "a", "b"}, "r");
  mutual.SetContent("r", "a");
  mutual.SetContent("a", "b");
  mutual.SetContent("b", "a");
  ASSERT_OK_AND_ASSIGN(Dtd mutual_unsat, mutual.Build());
  EXPECT_FALSE(mutual_unsat.IsSatisfiable());

  // PCDATA counts as derivable content.
  Dtd::Builder text({"r"}, "r");
  text.SetContent("r", "#PCDATA");
  ASSERT_OK_AND_ASSIGN(Dtd text_sat, text.Build());
  EXPECT_TRUE(text_sat.IsSatisfiable());
}

TEST(DtdTest, UnsatisfiableDtdYieldsInconsistentSpecification) {
  // End-to-end: the consistency pipeline must refute a specification
  // whose DTD admits no finite tree, even with zero constraints.
  Dtd::Builder doomed({"r", "a"}, "r");
  doomed.SetContent("r", "a");
  doomed.SetContent("a", "a");
  ASSERT_OK_AND_ASSIGN(Dtd unsat, doomed.Build());
  EXPECT_FALSE(unsat.IsSatisfiable());
}

TEST(DtdTest, ToStringRoundTripsThroughNames) {
  Dtd::Builder builder({"r", "a"}, "r");
  builder.SetContent("r", "a+");
  builder.AddAttribute("a", "id");
  ASSERT_OK_AND_ASSIGN(Dtd dtd, builder.Build());
  std::string text = dtd.ToString();
  EXPECT_NE(text.find("<!ELEMENT r"), std::string::npos);
  EXPECT_NE(text.find("<!ATTLIST a id"), std::string::npos);
}

}  // namespace
}  // namespace xmlverify
