file(REMOVE_RECURSE
  "CMakeFiles/consistency_facade_test.dir/core/consistency_facade_test.cc.o"
  "CMakeFiles/consistency_facade_test.dir/core/consistency_facade_test.cc.o.d"
  "consistency_facade_test"
  "consistency_facade_test.pdb"
  "consistency_facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
