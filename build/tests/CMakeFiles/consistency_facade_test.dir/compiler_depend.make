# Empty compiler generated dependencies file for consistency_facade_test.
# This may be replaced when dependencies are built.
