# Empty compiler generated dependencies file for document_checker_test.
# This may be replaced when dependencies are built.
