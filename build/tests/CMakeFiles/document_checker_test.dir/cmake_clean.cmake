file(REMOVE_RECURSE
  "CMakeFiles/document_checker_test.dir/checker/document_checker_test.cc.o"
  "CMakeFiles/document_checker_test.dir/checker/document_checker_test.cc.o.d"
  "document_checker_test"
  "document_checker_test.pdb"
  "document_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
