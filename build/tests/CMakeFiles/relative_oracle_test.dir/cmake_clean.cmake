file(REMOVE_RECURSE
  "CMakeFiles/relative_oracle_test.dir/core/relative_oracle_test.cc.o"
  "CMakeFiles/relative_oracle_test.dir/core/relative_oracle_test.cc.o.d"
  "relative_oracle_test"
  "relative_oracle_test.pdb"
  "relative_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relative_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
