# Empty dependencies file for relative_oracle_test.
# This may be replaced when dependencies are built.
