# Empty dependencies file for inclusion_closure_test.
# This may be replaced when dependencies are built.
