file(REMOVE_RECURSE
  "CMakeFiles/inclusion_closure_test.dir/constraints/inclusion_closure_test.cc.o"
  "CMakeFiles/inclusion_closure_test.dir/constraints/inclusion_closure_test.cc.o.d"
  "inclusion_closure_test"
  "inclusion_closure_test.pdb"
  "inclusion_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inclusion_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
