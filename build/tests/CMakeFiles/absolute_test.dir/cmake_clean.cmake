file(REMOVE_RECURSE
  "CMakeFiles/absolute_test.dir/core/absolute_test.cc.o"
  "CMakeFiles/absolute_test.dir/core/absolute_test.cc.o.d"
  "absolute_test"
  "absolute_test.pdb"
  "absolute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absolute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
