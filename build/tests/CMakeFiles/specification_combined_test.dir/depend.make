# Empty dependencies file for specification_combined_test.
# This may be replaced when dependencies are built.
