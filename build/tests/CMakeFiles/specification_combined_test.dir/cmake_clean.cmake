file(REMOVE_RECURSE
  "CMakeFiles/specification_combined_test.dir/core/specification_combined_test.cc.o"
  "CMakeFiles/specification_combined_test.dir/core/specification_combined_test.cc.o.d"
  "specification_combined_test"
  "specification_combined_test.pdb"
  "specification_combined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specification_combined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
