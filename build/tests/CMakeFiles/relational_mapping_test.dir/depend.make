# Empty dependencies file for relational_mapping_test.
# This may be replaced when dependencies are built.
