file(REMOVE_RECURSE
  "CMakeFiles/relational_mapping_test.dir/mapping/relational_mapping_test.cc.o"
  "CMakeFiles/relational_mapping_test.dir/mapping/relational_mapping_test.cc.o.d"
  "relational_mapping_test"
  "relational_mapping_test.pdb"
  "relational_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
