file(REMOVE_RECURSE
  "CMakeFiles/oracle_crosscheck_test.dir/core/oracle_crosscheck_test.cc.o"
  "CMakeFiles/oracle_crosscheck_test.dir/core/oracle_crosscheck_test.cc.o.d"
  "oracle_crosscheck_test"
  "oracle_crosscheck_test.pdb"
  "oracle_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
