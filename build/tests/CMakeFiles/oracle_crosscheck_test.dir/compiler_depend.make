# Empty compiler generated dependencies file for oracle_crosscheck_test.
# This may be replaced when dependencies are built.
