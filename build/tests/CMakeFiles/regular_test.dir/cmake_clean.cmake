file(REMOVE_RECURSE
  "CMakeFiles/regular_test.dir/core/regular_test.cc.o"
  "CMakeFiles/regular_test.dir/core/regular_test.cc.o.d"
  "regular_test"
  "regular_test.pdb"
  "regular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
