# Empty compiler generated dependencies file for simplex_stress_test.
# This may be replaced when dependencies are built.
