file(REMOVE_RECURSE
  "CMakeFiles/regular_oracle_test.dir/core/regular_oracle_test.cc.o"
  "CMakeFiles/regular_oracle_test.dir/core/regular_oracle_test.cc.o.d"
  "regular_oracle_test"
  "regular_oracle_test.pdb"
  "regular_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regular_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
