# Empty compiler generated dependencies file for regular_oracle_test.
# This may be replaced when dependencies are built.
