# Empty dependencies file for pde_test.
# This may be replaced when dependencies are built.
