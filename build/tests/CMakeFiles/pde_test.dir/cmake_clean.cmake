file(REMOVE_RECURSE
  "CMakeFiles/pde_test.dir/reductions/pde_test.cc.o"
  "CMakeFiles/pde_test.dir/reductions/pde_test.cc.o.d"
  "pde_test"
  "pde_test.pdb"
  "pde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
