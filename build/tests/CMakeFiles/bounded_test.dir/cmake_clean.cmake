file(REMOVE_RECURSE
  "CMakeFiles/bounded_test.dir/core/bounded_test.cc.o"
  "CMakeFiles/bounded_test.dir/core/bounded_test.cc.o.d"
  "bounded_test"
  "bounded_test.pdb"
  "bounded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
