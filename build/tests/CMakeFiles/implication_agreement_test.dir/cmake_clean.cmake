file(REMOVE_RECURSE
  "CMakeFiles/implication_agreement_test.dir/core/implication_agreement_test.cc.o"
  "CMakeFiles/implication_agreement_test.dir/core/implication_agreement_test.cc.o.d"
  "implication_agreement_test"
  "implication_agreement_test.pdb"
  "implication_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implication_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
