# Empty dependencies file for implication_agreement_test.
# This may be replaced when dependencies are built.
