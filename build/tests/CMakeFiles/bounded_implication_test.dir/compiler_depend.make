# Empty compiler generated dependencies file for bounded_implication_test.
# This may be replaced when dependencies are built.
