file(REMOVE_RECURSE
  "CMakeFiles/bounded_implication_test.dir/core/bounded_implication_test.cc.o"
  "CMakeFiles/bounded_implication_test.dir/core/bounded_implication_test.cc.o.d"
  "bounded_implication_test"
  "bounded_implication_test.pdb"
  "bounded_implication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_implication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
