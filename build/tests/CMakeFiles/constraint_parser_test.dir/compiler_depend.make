# Empty compiler generated dependencies file for constraint_parser_test.
# This may be replaced when dependencies are built.
