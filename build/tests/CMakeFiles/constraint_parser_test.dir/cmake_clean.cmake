file(REMOVE_RECURSE
  "CMakeFiles/constraint_parser_test.dir/constraints/constraint_parser_test.cc.o"
  "CMakeFiles/constraint_parser_test.dir/constraints/constraint_parser_test.cc.o.d"
  "constraint_parser_test"
  "constraint_parser_test.pdb"
  "constraint_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
