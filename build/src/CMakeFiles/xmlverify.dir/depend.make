# Empty dependencies file for xmlverify.
# This may be replaced when dependencies are built.
