file(REMOVE_RECURSE
  "libxmlverify.a"
)
