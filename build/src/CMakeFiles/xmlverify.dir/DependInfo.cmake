
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bigint.cc" "src/CMakeFiles/xmlverify.dir/base/bigint.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/base/bigint.cc.o.d"
  "/root/repo/src/base/rational.cc" "src/CMakeFiles/xmlverify.dir/base/rational.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/base/rational.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/xmlverify.dir/base/status.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/xmlverify.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/base/string_util.cc.o.d"
  "/root/repo/src/checker/document_checker.cc" "src/CMakeFiles/xmlverify.dir/checker/document_checker.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/checker/document_checker.cc.o.d"
  "/root/repo/src/constraints/constraint.cc" "src/CMakeFiles/xmlverify.dir/constraints/constraint.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/constraints/constraint.cc.o.d"
  "/root/repo/src/constraints/constraint_parser.cc" "src/CMakeFiles/xmlverify.dir/constraints/constraint_parser.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/constraints/constraint_parser.cc.o.d"
  "/root/repo/src/constraints/inclusion_closure.cc" "src/CMakeFiles/xmlverify.dir/constraints/inclusion_closure.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/constraints/inclusion_closure.cc.o.d"
  "/root/repo/src/constraints/relative_geometry.cc" "src/CMakeFiles/xmlverify.dir/constraints/relative_geometry.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/constraints/relative_geometry.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/xmlverify.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/xmlverify.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/diagnosis.cc" "src/CMakeFiles/xmlverify.dir/core/diagnosis.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/diagnosis.cc.o.d"
  "/root/repo/src/core/implication.cc" "src/CMakeFiles/xmlverify.dir/core/implication.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/implication.cc.o.d"
  "/root/repo/src/core/sat_absolute.cc" "src/CMakeFiles/xmlverify.dir/core/sat_absolute.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/sat_absolute.cc.o.d"
  "/root/repo/src/core/sat_bounded.cc" "src/CMakeFiles/xmlverify.dir/core/sat_bounded.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/sat_bounded.cc.o.d"
  "/root/repo/src/core/sat_hierarchical.cc" "src/CMakeFiles/xmlverify.dir/core/sat_hierarchical.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/sat_hierarchical.cc.o.d"
  "/root/repo/src/core/sat_regular.cc" "src/CMakeFiles/xmlverify.dir/core/sat_regular.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/sat_regular.cc.o.d"
  "/root/repo/src/core/specification.cc" "src/CMakeFiles/xmlverify.dir/core/specification.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/specification.cc.o.d"
  "/root/repo/src/core/witness.cc" "src/CMakeFiles/xmlverify.dir/core/witness.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/core/witness.cc.o.d"
  "/root/repo/src/encoding/cardinality.cc" "src/CMakeFiles/xmlverify.dir/encoding/cardinality.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/encoding/cardinality.cc.o.d"
  "/root/repo/src/encoding/flow_encoder.cc" "src/CMakeFiles/xmlverify.dir/encoding/flow_encoder.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/encoding/flow_encoder.cc.o.d"
  "/root/repo/src/encoding/narrowing.cc" "src/CMakeFiles/xmlverify.dir/encoding/narrowing.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/encoding/narrowing.cc.o.d"
  "/root/repo/src/encoding/regular_encoder.cc" "src/CMakeFiles/xmlverify.dir/encoding/regular_encoder.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/encoding/regular_encoder.cc.o.d"
  "/root/repo/src/ilp/linear.cc" "src/CMakeFiles/xmlverify.dir/ilp/linear.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/ilp/linear.cc.o.d"
  "/root/repo/src/ilp/simplex.cc" "src/CMakeFiles/xmlverify.dir/ilp/simplex.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/ilp/simplex.cc.o.d"
  "/root/repo/src/ilp/solver.cc" "src/CMakeFiles/xmlverify.dir/ilp/solver.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/ilp/solver.cc.o.d"
  "/root/repo/src/mapping/relational_mapping.cc" "src/CMakeFiles/xmlverify.dir/mapping/relational_mapping.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/mapping/relational_mapping.cc.o.d"
  "/root/repo/src/reductions/cnf.cc" "src/CMakeFiles/xmlverify.dir/reductions/cnf.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/cnf.cc.o.d"
  "/root/repo/src/reductions/cnf_depth2.cc" "src/CMakeFiles/xmlverify.dir/reductions/cnf_depth2.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/cnf_depth2.cc.o.d"
  "/root/repo/src/reductions/diophantine_relative.cc" "src/CMakeFiles/xmlverify.dir/reductions/diophantine_relative.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/diophantine_relative.cc.o.d"
  "/root/repo/src/reductions/impl_reduction.cc" "src/CMakeFiles/xmlverify.dir/reductions/impl_reduction.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/impl_reduction.cc.o.d"
  "/root/repo/src/reductions/pde_reduction.cc" "src/CMakeFiles/xmlverify.dir/reductions/pde_reduction.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/pde_reduction.cc.o.d"
  "/root/repo/src/reductions/qbf.cc" "src/CMakeFiles/xmlverify.dir/reductions/qbf.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/qbf.cc.o.d"
  "/root/repo/src/reductions/qbf_hrc.cc" "src/CMakeFiles/xmlverify.dir/reductions/qbf_hrc.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/qbf_hrc.cc.o.d"
  "/root/repo/src/reductions/qbf_regular.cc" "src/CMakeFiles/xmlverify.dir/reductions/qbf_regular.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/qbf_regular.cc.o.d"
  "/root/repo/src/reductions/subset_sum.cc" "src/CMakeFiles/xmlverify.dir/reductions/subset_sum.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/reductions/subset_sum.cc.o.d"
  "/root/repo/src/regex/automaton.cc" "src/CMakeFiles/xmlverify.dir/regex/automaton.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/regex/automaton.cc.o.d"
  "/root/repo/src/regex/regex.cc" "src/CMakeFiles/xmlverify.dir/regex/regex.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/regex/regex.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/CMakeFiles/xmlverify.dir/xml/dtd.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/xml/dtd.cc.o.d"
  "/root/repo/src/xml/dtd_parser.cc" "src/CMakeFiles/xmlverify.dir/xml/dtd_parser.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/xml/dtd_parser.cc.o.d"
  "/root/repo/src/xml/tree.cc" "src/CMakeFiles/xmlverify.dir/xml/tree.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/xml/tree.cc.o.d"
  "/root/repo/src/xml/validator.cc" "src/CMakeFiles/xmlverify.dir/xml/validator.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/xml/validator.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/xmlverify.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/xmlverify.dir/xml/xml_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
