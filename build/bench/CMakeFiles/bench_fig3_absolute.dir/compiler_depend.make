# Empty compiler generated dependencies file for bench_fig3_absolute.
# This may be replaced when dependencies are built.
