file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_relative.dir/bench_fig4_relative.cc.o"
  "CMakeFiles/bench_fig4_relative.dir/bench_fig4_relative.cc.o.d"
  "bench_fig4_relative"
  "bench_fig4_relative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
