file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_regular.dir/bench_fig3_regular.cc.o"
  "CMakeFiles/bench_fig3_regular.dir/bench_fig3_regular.cc.o.d"
  "bench_fig3_regular"
  "bench_fig3_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
