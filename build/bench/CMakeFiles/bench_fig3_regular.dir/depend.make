# Empty dependencies file for bench_fig3_regular.
# This may be replaced when dependencies are built.
