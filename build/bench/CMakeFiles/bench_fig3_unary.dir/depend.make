# Empty dependencies file for bench_fig3_unary.
# This may be replaced when dependencies are built.
