file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_unary.dir/bench_fig3_unary.cc.o"
  "CMakeFiles/bench_fig3_unary.dir/bench_fig3_unary.cc.o.d"
  "bench_fig3_unary"
  "bench_fig3_unary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
