# Empty compiler generated dependencies file for bench_thm35_tractability.
# This may be replaced when dependencies are built.
