file(REMOVE_RECURSE
  "CMakeFiles/bench_thm35_tractability.dir/bench_thm35_tractability.cc.o"
  "CMakeFiles/bench_thm35_tractability.dir/bench_thm35_tractability.cc.o.d"
  "bench_thm35_tractability"
  "bench_thm35_tractability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm35_tractability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
