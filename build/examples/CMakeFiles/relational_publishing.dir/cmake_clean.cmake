file(REMOVE_RECURSE
  "CMakeFiles/relational_publishing.dir/relational_publishing.cpp.o"
  "CMakeFiles/relational_publishing.dir/relational_publishing.cpp.o.d"
  "relational_publishing"
  "relational_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
