# Empty compiler generated dependencies file for relational_publishing.
# This may be replaced when dependencies are built.
