file(REMOVE_RECURSE
  "CMakeFiles/xmlvc.dir/xmlvc.cpp.o"
  "CMakeFiles/xmlvc.dir/xmlvc.cpp.o.d"
  "xmlvc"
  "xmlvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
