# Empty dependencies file for xmlvc.
# This may be replaced when dependencies are built.
