# Empty dependencies file for geography.
# This may be replaced when dependencies are built.
