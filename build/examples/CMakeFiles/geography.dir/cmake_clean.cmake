file(REMOVE_RECURSE
  "CMakeFiles/geography.dir/geography.cpp.o"
  "CMakeFiles/geography.dir/geography.cpp.o.d"
  "geography"
  "geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
