# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_geography "/root/repo/build/examples/geography")
set_tests_properties(example_geography PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_library_catalog "/root/repo/build/examples/library_catalog")
set_tests_properties(example_library_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relational_publishing "/root/repo/build/examples/relational_publishing")
set_tests_properties(example_relational_publishing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(xmlvc_school_consistent "/root/repo/build/examples/xmlvc" "check" "/root/repo/examples/specs/school.dtd" "/root/repo/examples/specs/school.constraints")
set_tests_properties(xmlvc_school_consistent PROPERTIES  PASS_REGULAR_EXPRESSION "CONSISTENT" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(xmlvc_school_inconsistent "/root/repo/build/examples/xmlvc" "check" "/root/repo/examples/specs/school.dtd" "/root/repo/examples/specs/school_inconsistent.constraints")
set_tests_properties(xmlvc_school_inconsistent PROPERTIES  PASS_REGULAR_EXPRESSION "INCONSISTENT" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(xmlvc_geography_combined "/root/repo/build/examples/xmlvc" "check" "/root/repo/examples/specs/geography.xvc")
set_tests_properties(xmlvc_geography_combined PROPERTIES  PASS_REGULAR_EXPRESSION "INCONSISTENT" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(xmlvc_geography_diagnose "/root/repo/build/examples/xmlvc" "diagnose" "/root/repo/examples/specs/geography.xvc")
set_tests_properties(xmlvc_geography_diagnose PROPERTIES  PASS_REGULAR_EXPRESSION "minimal inconsistent core" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(xmlvc_classify "/root/repo/build/examples/xmlvc" "classify" "/root/repo/examples/specs/geography.xvc")
set_tests_properties(xmlvc_classify PROPERTIES  PASS_REGULAR_EXPRESSION "hierarchical" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
