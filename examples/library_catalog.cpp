// Hierarchical relative constraints (Section 4.2, Figure 2): the
// library catalog. Variant (a) is hierarchical and decidable scope by
// scope; variant (b) adds a library-wide author registry whose
// foreign key reaches through the book scopes — a conflicting pair —
// and falls outside HRC. The example also demonstrates implication
// checking on the catalog.
//
//   ./build/examples/library_catalog
#include <cstdio>

#include "core/consistency.h"
#include "core/implication.h"
#include "core/sat_hierarchical.h"

namespace {

constexpr char kCatalogDtd[] = R"(
<!ELEMENT library (book+)>
<!ELEMENT book (author+, chapter+)>
<!ELEMENT chapter (section*)>
<!ATTLIST book isbn>
<!ATTLIST author name>
<!ATTLIST chapter number>
<!ATTLIST section title>
)";

constexpr char kCatalogConstraints[] = R"(
library(book.isbn -> book)
book(author.name -> author)
book(chapter.number -> chapter)
chapter(section.title -> section)
)";

constexpr char kRegistryDtd[] = R"(
<!ELEMENT library (book+, author_info+)>
<!ELEMENT book (author+, chapter+)>
<!ELEMENT chapter (section*)>
<!ATTLIST book isbn>
<!ATTLIST author name>
<!ATTLIST author_info name>
<!ATTLIST chapter number>
<!ATTLIST section title>
)";

}  // namespace

int main() {
  using namespace xmlverify;
  ConsistencyChecker checker;

  // Variant (a): four relative keys, one per nesting level.
  Specification catalog =
      Specification::Parse(kCatalogDtd, kCatalogConstraints).ValueOrDie();
  RelativeClassification classification =
      ClassifyRelative(catalog.dtd, catalog.constraints).ValueOrDie();
  std::printf("catalog (Figure 2a): hierarchical=%s, locality=%d\n",
              classification.hierarchical ? "yes" : "no",
              classification.locality);
  ConsistencyVerdict verdict = checker.Check(catalog).ValueOrDie();
  std::printf("verdict: %s (decided over %lld scope subproblems)\n",
              OutcomeName(verdict.outcome).c_str(),
              static_cast<long long>(verdict.stats.subproblems));
  if (verdict.witness.has_value()) {
    std::printf("witness:\n%s\n",
                verdict.witness->ToXml(catalog.dtd).c_str());
  }

  // Variant (b): the author registry breaks the hierarchy.
  std::string registry_constraints = kCatalogConstraints;
  registry_constraints += "library(author_info.name -> author_info)\n";
  registry_constraints += "library(author.name <= author_info.name)\n";
  Specification registry =
      Specification::Parse(kRegistryDtd, registry_constraints).ValueOrDie();
  RelativeClassification rc =
      ClassifyRelative(registry.dtd, registry.constraints).ValueOrDie();
  std::printf("registry variant (Figure 2b): hierarchical=%s\n",
              rc.hierarchical ? "yes" : "no");
  std::printf("conflicting pair: %s\n", rc.conflict.c_str());
  ConsistencyVerdict bounded = checker.Check(registry).ValueOrDie();
  std::printf("fallback verdict: %s (%s)\n\n",
              OutcomeName(bounded.outcome).c_str(), bounded.note.c_str());

  // Implication on the catalog: does the (absolute) isbn key imply a
  // global author-name key? (It does not: a counterexample has one
  // book with two same-named authors. Implication with RELATIVE
  // premises is undecidable in general — Corollary 4.5 — so this demo
  // uses the absolute form of the isbn key.)
  Specification keys_only =
      Specification::Parse(kCatalogDtd, "book.isbn -> book\n").ValueOrDie();
  int author = keys_only.dtd.TypeId("author").ValueOrDie();
  auto resolve = [&keys_only](const std::string& name) {
    return keys_only.dtd.FindType(name);
  };
  Regex author_path =
      ParseRegex("library._*.author", resolve).ValueOrDie();
  ImplicationVerdict implied =
      CheckKeyImplication(keys_only.dtd, keys_only.constraints,
                          RegularKey{author_path, author, "name"})
          .ValueOrDie();
  std::printf("isbn key implies global author-name key: %s\n",
              implied.implied ? "yes" : "no");
  if (implied.counterexample.has_value()) {
    std::printf("counterexample (two authors sharing a name):\n%s",
                implied.counterexample->ToXml(keys_only.dtd).c_str());
  }
  return 0;
}
