// Publishing relational data as XML (the paper's opening motivation,
// citing SilkRoute/XPERANTO): map a relational schema to an XML
// specification and validate the publishing pipeline at compile time
// — including catching a constraint combination no database instance
// can satisfy.
//
//   ./build/examples/relational_publishing
#include <cstdio>

#include "core/consistency.h"
#include "core/diagnosis.h"
#include "mapping/relational_mapping.h"

int main() {
  using namespace xmlverify;

  // A small order-management schema.
  RelationalSchema schema;
  {
    RelationalTable customers;
    customers.name = "customer";
    customers.columns = {"cid", "region"};
    customers.primary_key = {"cid"};
    customers.min_rows = 1;
    RelationalTable orders;
    orders.name = "order_row";
    orders.columns = {"oid", "buyer", "item"};
    orders.primary_key = {"oid"};
    orders.foreign_keys = {{"buyer", "customer", "cid"}};
    orders.min_rows = 1;
    RelationalTable items;
    items.name = "item_row";
    items.columns = {"sku"};
    items.primary_key = {"sku"};
    schema.tables = {customers, orders, items};
    schema.tables[1].foreign_keys.push_back({"item", "item_row", "sku"});
  }

  Specification spec = MapRelationalSchema(schema).ValueOrDie();
  std::printf("published DTD:\n%s\n", spec.dtd.ToString().c_str());
  std::printf("derived constraints:\n%s\n",
              spec.constraints.ToString(spec.dtd).c_str());

  ConsistencyChecker checker;
  ConsistencyVerdict verdict = checker.Check(spec).ValueOrDie();
  std::printf("pipeline verdict: %s\n",
              OutcomeName(verdict.outcome).c_str());
  if (verdict.witness.has_value()) {
    std::printf("smallest publishable instance:\n%s\n",
                verdict.witness->ToXml(spec.dtd).c_str());
  }

  // Now a bad evolution, in the spirit of the paper's school example:
  // two locally-reasonable rules arrive together.
  //   (1) "every customer must appear as a buyer"  — cid <= buyer;
  //   (2) "all orders go through the single default sales channel" —
  //       buyer <= channel.rep, with channel a singleton config table.
  // (1) makes buyer a key of order_row (a foreign key references a
  // key), so the at-least-two customer ids need two distinct buyer
  // values — but (2) squeezes every buyer value into the single
  // channel row's rep value. No database instance can be published.
  RelationalSchema evolved = schema;
  RelationalTable channel;
  channel.name = "channel";
  channel.columns = {"rep"};
  channel.primary_key = {"rep"};
  channel.min_rows = 1;
  channel.max_rows = 1;  // exactly one sales channel
  evolved.tables.push_back(channel);
  evolved.tables[0].min_rows = 2;  // at least two customers
  evolved.tables[0].foreign_keys.push_back({"cid", "order_row", "buyer"});
  evolved.tables[1].foreign_keys.push_back({"buyer", "channel", "rep"});

  Specification evolved_spec = MapRelationalSchema(evolved).ValueOrDie();
  ConsistencyVerdict evolved_verdict =
      checker.Check(evolved_spec).ValueOrDie();
  std::printf("evolved pipeline verdict: %s\n",
              OutcomeName(evolved_verdict.outcome).c_str());
  if (evolved_verdict.outcome == ConsistencyOutcome::kInconsistent) {
    ConstraintSet core =
        MinimizeInconsistentCore(evolved_spec.dtd, evolved_spec.constraints)
            .ValueOrDie();
    std::printf("minimal inconsistent core:\n%s",
                core.ToString(evolved_spec.dtd).c_str());
  }
  return 0;
}
