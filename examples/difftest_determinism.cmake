# Runs xmlvc-difftest twice — single-threaded and multi-threaded —
# and fails unless the two summaries are byte-identical. Invoked by
# the difftest_determinism ctest entry.
if(NOT DEFINED DIFFTEST_BINARY)
  message(FATAL_ERROR "pass -DDIFFTEST_BINARY=/path/to/xmlvc-difftest")
endif()

execute_process(
  COMMAND ${DIFFTEST_BINARY} --seeds=10 --seed=42 --jobs=1
  OUTPUT_VARIABLE first
  RESULT_VARIABLE first_rc)
execute_process(
  COMMAND ${DIFFTEST_BINARY} --seeds=10 --seed=42 --jobs=4
  OUTPUT_VARIABLE second
  RESULT_VARIABLE second_rc)

if(NOT first_rc EQUAL 0)
  message(FATAL_ERROR "first run failed (rc=${first_rc}):\n${first}")
endif()
if(NOT second_rc EQUAL 0)
  message(FATAL_ERROR "second run failed (rc=${second_rc}):\n${second}")
endif()
if(NOT first STREQUAL second)
  message(FATAL_ERROR
          "summaries differ across job counts:\n--- jobs=1 ---\n${first}"
          "\n--- jobs=4 ---\n${second}")
endif()
