// Relative constraints: the countries/provinces/capitals example of
// the paper's introduction (Figure 1b). A specification that "might
// look reasonable at first" is caught as inconsistent at compile time,
// by the counting argument the paper sketches; a weakened variant is
// consistent and yields a witness document.
//
//   ./build/examples/geography
#include <cstdio>

#include "core/consistency.h"
#include "core/sat_hierarchical.h"

namespace {

constexpr char kGeoDtd[] = R"(
<!ELEMENT db (country+)>
<!ELEMENT country (province+, capital+)>
<!ELEMENT province (capital, city*)>
<!ATTLIST country name>
<!ATTLIST province name>
<!ATTLIST capital inProvince>
)";

constexpr char kConstraints[] = R"(
country.name -> country
country(province.name -> province)
country(capital.inProvince -> capital)
country(capital.inProvince <= province.name)
)";

}  // namespace

int main() {
  using namespace xmlverify;

  Specification spec =
      Specification::Parse(kGeoDtd, kConstraints).ValueOrDie();
  std::printf("constraints:\n%s\n",
              spec.constraints.ToString(spec.dtd).c_str());

  // The specification is hierarchical (no conflicting pairs), so the
  // Theorem 4.3 decomposition applies and gives an exact verdict.
  RelativeClassification classification =
      ClassifyRelative(spec.dtd, spec.constraints).ValueOrDie();
  std::printf("hierarchical: %s, locality d = %d\n",
              classification.hierarchical ? "yes" : "no",
              classification.locality);

  ConsistencyChecker checker;
  ConsistencyVerdict verdict = checker.Check(spec).ValueOrDie();
  std::printf("verdict: %s\n", OutcomeName(verdict.outcome).c_str());
  std::printf(
      "why: within one country, every capital needs a distinct\n"
      "inProvince value drawn from the province names, so\n"
      "#capitals <= #provinces; but the DTD gives every province a\n"
      "capital child plus at least one more under country.\n\n");

  // Drop the relative key on capitals: now capitals may share
  // inProvince values and a document exists.
  constexpr char kWeaker[] = R"(
country.name -> country
country(province.name -> province)
country(capital.inProvince <= province.name)
)";
  Specification weaker =
      Specification::Parse(kGeoDtd, kWeaker).ValueOrDie();
  ConsistencyVerdict fixed = checker.Check(weaker).ValueOrDie();
  std::printf("without the relative capital key: %s\n",
              OutcomeName(fixed.outcome).c_str());
  if (fixed.witness.has_value()) {
    std::printf("witness:\n%s", fixed.witness->ToXml(weaker.dtd).c_str());
  }
  return 0;
}
