// Quickstart: verify the consistency of an XML specification — the
// school document of the paper's introduction (Figure 1a).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/consistency.h"

namespace {

constexpr char kSchoolDtd[] = R"(
<!ELEMENT r (students, courses, faculty, labs)>
<!ELEMENT students (student+)>
<!ELEMENT courses (cs340, cs108, cs434)>
<!ELEMENT faculty (prof+)>
<!ELEMENT labs (dbLab, pcLab)>
<!ELEMENT student (record)>
<!ELEMENT prof (record)>
<!ELEMENT cs340 (takenBy+)>
<!ELEMENT cs108 (takenBy+)>
<!ELEMENT cs434 (takenBy+)>
<!ELEMENT dbLab (acc+)>
<!ELEMENT pcLab (acc+)>
<!ATTLIST record id>
<!ATTLIST takenBy sid>
<!ATTLIST acc num>
)";

// ids identify records; sid identifies cs434 enrollments; cs434 can
// only be taken by students; dbLab accounts belong to cs434 takers.
constexpr char kConstraints[] = R"(
r._*.(student|prof).record.id -> r._*.(student|prof).record
r._*.cs434.takenBy.sid -> r._*.cs434.takenBy
fk r._*.cs434.takenBy.sid <= r._*.student.record.id
fk r._*.dbLab.acc.num <= r._*.cs434.takenBy.sid
)";

// The late-added requirement: every professor has a dbLab account.
constexpr char kFacultyAccounts[] =
    "fk r.faculty.prof.record.id <= r._*.dbLab.acc.num\n";

}  // namespace

int main() {
  using namespace xmlverify;

  // 1. Parse the specification (DTD + constraints).
  Specification spec =
      Specification::Parse(kSchoolDtd, kConstraints).ValueOrDie();
  std::printf("constraint class: %s\n\n",
              ConstraintClassName(spec.Classify()).c_str());

  // 2. Decide consistency; the checker picks the right procedure.
  ConsistencyChecker checker;
  ConsistencyVerdict verdict = checker.Check(spec).ValueOrDie();
  std::printf("original school specification: %s\n",
              OutcomeName(verdict.outcome).c_str());
  if (verdict.witness.has_value()) {
    std::printf("a smallest-count witness document:\n%s\n",
                verdict.witness->ToXml(spec.dtd).c_str());
  }

  // 3. Add the new requirement and re-check: the specification
  //    becomes inconsistent (professors would have to be students).
  Specification extended =
      Specification::Parse(kSchoolDtd,
                           std::string(kConstraints) + kFacultyAccounts)
          .ValueOrDie();
  ConsistencyVerdict verdict2 = checker.Check(extended).ValueOrDie();
  std::printf(
      "with 'every professor holds a dbLab account': %s\n"
      "(dbLab users are cs434 takers, cs434 takers are students, and "
      "record ids\n separate students from professors — no document can "
      "satisfy all of it)\n",
      OutcomeName(verdict2.outcome).c_str());
  return 0;
}
