// xmlvc: the command-line consistency checker.
//
//   xmlvc check <spec.dtd> <constraints.txt> [--witness <out.xml>]
//       Decides consistency of the specification and optionally
//       writes a witness document.
//   xmlvc validate <spec.dtd> <constraints.txt> <document.xml>
//       Dynamically validates one document against the DTD and the
//       constraints (the "dynamic approach" of the paper's intro).
//   xmlvc classify <spec.dtd> <constraints.txt>
//       Reports the constraint class (Figures 3/4) and, for relative
//       constraints, the hierarchy/locality analysis.
//   xmlvc diagnose <spec.dtd> <constraints.txt>
//       For an inconsistent specification, prints a minimal
//       inconsistent core (drop any one of its constraints and a
//       document exists).
//   xmlvc --batch <manifest>
//       Checks every specification listed in the manifest (one per
//       line: a combined .xvc path, or DTD and constraint paths) on a
//       thread pool, one verdict line per spec in manifest order.
//
// Flags, accepted anywhere on the command line (see
// docs/observability.md for the report schema and docs/robustness.md
// for budgets, the degradation ladder, and fault injection):
//   --jobs=N          batch worker threads (default: hardware threads)
//   --timeout=MS      per-check wall-clock budget in milliseconds;
//                     an expired check reports DEADLINE_EXCEEDED
//   --memory-limit=MB per-check tracked-allocation ceiling; exhaustion
//                     reports RESOURCE_EXHAUSTED (exit 5), never a
//                     definitive verdict
//   --max-depth=N     parser/recursion nesting ceiling (default 1000)
//   --retries=N       batch mode: re-run budget-failed items up to N
//                     times with doubled budgets
//   --fault-inject=SPEC  arm the deterministic fault injector, e.g.
//                     manifest_io=1 or alloc=%7 (testing only)
//   --fault-seed=N    seed for probabilistic fault clauses
//   --stats           print a JSON phase/counter report to stdout
//   --trace[=text]    stream trace events to stderr, human-readable
//   --trace=json      stream trace events to stderr as JSON lines
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "base/fault_injection.h"
#include "base/resource_guard.h"
#include "base/string_util.h"
#include "batch/batch_runner.h"
#include "checker/document_checker.h"
#include "core/consistency.h"
#include "core/diagnosis.h"
#include "core/sat_hierarchical.h"
#include "trace/sinks.h"
#include "trace/trace.h"
#include "xml/xml_parser.h"

namespace {

using namespace xmlverify;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xmlvc check <spec.dtd> <constraints.txt> "
               "[--witness <out.xml>] [--explain-core]\n"
               "  xmlvc validate <spec.dtd> <constraints.txt> <doc.xml>\n"
               "  xmlvc classify <spec.dtd> <constraints.txt>\n"
               "  xmlvc diagnose <spec.dtd> <constraints.txt>\n"
               "  xmlvc simplify <spec.dtd> <constraints.txt>\n"
               "  xmlvc --batch <manifest>\n"
               "(a single combined <spec.xvc> may replace the file pair)\n"
               "flags (any position):\n"
               "  --jobs=N           batch worker threads\n"
               "  --solver-jobs=N    parallel branch-and-bound workers\n"
               "                     inside each solver call (default 1)\n"
               "  --timeout=MS       per-check wall-clock budget (ms)\n"
               "  --memory-limit=MB  per-check tracked-memory ceiling\n"
               "  --max-depth=N      parser/recursion nesting ceiling\n"
               "  --retries=N        batch: retry budget failures with\n"
               "                     doubled budgets\n"
               "  --explain-core     check: on INCONSISTENT, also print a\n"
               "                     1-minimal inconsistent core\n"
               "  --fault-inject=SPEC  arm fault injection (testing)\n"
               "  --fault-seed=N     seed for %%P fault clauses\n"
               "  --stats            JSON phase/counter report on stdout\n"
               "  --trace[=text]     stream trace events to stderr\n"
               "  --trace=json       stream trace events as JSON lines\n");
  return 2;
}

// Budget-shaped global flags, threaded to every command.
struct BudgetFlags {
  int64_t timeout_millis = 0;
  int64_t memory_limit_bytes = 0;
  int max_depth = 0;
  int retries = 0;
  int solver_jobs = 0;  // 0: keep the solver's serial default
  bool explain_core = false;  // check: minimize a core on INCONSISTENT

  ConsistencyChecker::Options MakeCheckerOptions() const {
    ConsistencyChecker::Options options;
    if (timeout_millis > 0) {
      options.deadline = Deadline::AfterMillis(timeout_millis);
    }
    options.budget.set_memory_limit_bytes(memory_limit_bytes);
    options.budget.set_max_depth(max_depth);
    if (solver_jobs > 0) options.solver.jobs = solver_jobs;
    return options;
  }
};

// Either two files (DTD + constraints) or one combined `.xvc` file
// with a `%%` separator line.
Result<Specification> LoadSpec(const std::string& dtd_path,
                               const std::string& constraints_path) {
  if (constraints_path.empty()) {
    ASSIGN_OR_RETURN(std::string combined, ReadFile(dtd_path));
    return Specification::ParseCombined(combined);
  }
  ASSIGN_OR_RETURN(std::string dtd_text, ReadFile(dtd_path));
  ASSIGN_OR_RETURN(std::string constraints_text, ReadFile(constraints_path));
  return Specification::Parse(dtd_text, constraints_text);
}

int RunCheck(const Specification& spec, const std::string& witness_path,
             const BudgetFlags& budget) {
  ConsistencyChecker checker(budget.MakeCheckerOptions());
  Result<ConsistencyVerdict> verdict = checker.Check(spec);
  if (!verdict.ok()) {
    std::fprintf(stderr, "error: %s\n", verdict.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", OutcomeName(verdict->outcome).c_str());
  if (!verdict->note.empty()) std::printf("note: %s\n", verdict->note.c_str());
  if (budget.explain_core &&
      verdict->outcome == ConsistencyOutcome::kInconsistent) {
    DiagnosisOptions diagnosis;
    diagnosis.checker = budget.MakeCheckerOptions();
    Result<ConstraintSet> core =
        MinimizeInconsistentCore(spec.dtd, spec.constraints, diagnosis);
    if (core.ok()) {
      std::printf("minimal inconsistent core (%d constraints):\n%s",
                  core->size(), core->ToString(spec.dtd).c_str());
    } else {
      std::fprintf(stderr, "core minimization failed: %s\n",
                   core.status().ToString().c_str());
    }
  }
  if (verdict->witness.has_value() && !witness_path.empty()) {
    std::ofstream out(witness_path);
    out << verdict->witness->ToXml(spec.dtd);
    std::printf("witness written to %s\n", witness_path.c_str());
  }
  // Exit codes: 0 consistent, 1 inconsistent, 3 unknown, 4 deadline,
  // 5 resource-exhausted.
  switch (verdict->outcome) {
    case ConsistencyOutcome::kConsistent: return 0;
    case ConsistencyOutcome::kInconsistent: return 1;
    case ConsistencyOutcome::kUnknown: return 3;
    case ConsistencyOutcome::kDeadlineExceeded: return 4;
    case ConsistencyOutcome::kResourceExhausted: return 5;
  }
  return 2;
}

// The batch driver: one verdict line per manifest entry, in manifest
// order, then a '#'-prefixed summary. Exit code reflects the worst
// outcome in the batch: error > resource-exhausted > deadline >
// unknown > inconsistent.
int RunBatchCommand(const std::string& manifest_path, int jobs,
                    const BudgetFlags& budget, StatsRegistry* stats) {
  Result<std::string> manifest = ReadFile(manifest_path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "error: %s\n", manifest.status().ToString().c_str());
    return 2;
  }
  size_t slash = manifest_path.find_last_of('/');
  std::string base_dir =
      slash == std::string::npos ? std::string() : manifest_path.substr(0, slash);
  Result<std::vector<BatchEntry>> entries =
      ParseBatchManifest(*manifest, base_dir);
  if (!entries.ok()) {
    std::fprintf(stderr, "error: %s\n", entries.status().ToString().c_str());
    return 2;
  }

  BatchOptions options;
  options.jobs = jobs;
  // The per-item deadline is derived from timeout_millis when a worker
  // picks the item up, so the Deadline is not stamped here.
  options.timeout_millis = budget.timeout_millis;
  options.retries = budget.retries;
  options.check.budget.set_memory_limit_bytes(budget.memory_limit_bytes);
  options.check.budget.set_max_depth(budget.max_depth);
  options.stats = stats;
  BatchResult result = RunBatch(*entries, options);

  for (size_t i = 0; i < result.items.size(); ++i) {
    const BatchEntry& entry = (*entries)[i];
    std::string label = entry.dtd_path;
    if (!entry.constraints_path.empty()) label += " " + entry.constraints_path;
    const BatchItem& item = result.items[i];
    if (!item.status.ok()) {
      std::printf("%s: ERROR: %s\n", label.c_str(),
                  item.status.ToString().c_str());
    } else {
      std::printf("%s: %s\n", label.c_str(),
                  OutcomeName(item.verdict.outcome).c_str());
    }
  }
  std::printf(
      "# checked %zu spec(s): %d consistent, %d inconsistent, %d unknown, "
      "%d deadline-exceeded, %d resource-exhausted, %d error(s) in %lld ms\n",
      result.items.size(), result.consistent, result.inconsistent,
      result.unknown, result.deadline_exceeded, result.resource_exhausted,
      result.errors, static_cast<long long>(result.wall_millis));
  if (result.retries > 0) {
    std::printf("# %d retry attempt(s), %d item(s) recovered\n",
                result.retries, result.retry_recovered);
  }
  if (result.errors > 0) return 2;
  if (result.resource_exhausted > 0) return 5;
  if (result.deadline_exceeded > 0) return 4;
  if (result.unknown > 0) return 3;
  if (result.inconsistent > 0) return 1;
  return 0;
}

int RunValidate(const Specification& spec, const std::string& doc_path) {
  Result<std::string> text = ReadFile(doc_path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 2;
  }
  Result<XmlTree> tree = ParseXmlDocument(*text, spec.dtd);
  if (!tree.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 tree.status().ToString().c_str());
    return 2;
  }
  Status valid = CheckDocument(*tree, spec.dtd, spec.constraints);
  if (valid.ok()) {
    std::printf("VALID\n");
    return 0;
  }
  std::printf("INVALID: %s\n", valid.message().c_str());
  return 1;
}

int RunClassify(const Specification& spec) {
  std::printf("class: %s\n",
              ConstraintClassName(spec.Classify()).c_str());
  std::printf("DTD: %s, %s, depth %s\n",
              spec.dtd.IsRecursive() ? "recursive" : "non-recursive",
              spec.dtd.IsNoStar() ? "no-star" : "with Kleene star",
              spec.dtd.IsRecursive()
                  ? "unbounded"
                  : std::to_string(spec.dtd.Depth().ValueOrDie()).c_str());
  if (spec.constraints.HasRelative()) {
    Result<RelativeClassification> rc =
        ClassifyRelative(spec.dtd, spec.constraints);
    if (rc.ok()) {
      std::printf("relative geometry: %s",
                  rc->hierarchical ? "hierarchical" : "NOT hierarchical");
      if (rc->hierarchical) {
        std::printf(", %d-local", rc->locality);
      } else {
        std::printf(" (%s)", rc->conflict.c_str());
      }
      std::printf("\n");
    } else {
      std::printf("relative geometry: %s\n",
                  rc.status().ToString().c_str());
    }
  }
  return 0;
}

int RunCommand(int argc, char** argv, const BudgetFlags& budget) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  // A spec is either one combined `.xvc` file or a DTD + constraints
  // file pair; remaining arguments follow the spec.
  std::string first = argv[2];
  bool combined = first.size() > 4 &&
                  first.compare(first.size() - 4, 4, ".xvc") == 0;
  int rest = combined ? 3 : 4;
  if (!combined && argc < 4) return Usage();
  Result<Specification> spec =
      LoadSpec(first, combined ? std::string() : argv[3]);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  if (command == "check") {
    std::string witness_path;
    for (int arg = rest; arg + 1 < argc; ++arg) {
      if (std::string(argv[arg]) == "--witness") witness_path = argv[arg + 1];
    }
    return RunCheck(*spec, witness_path, budget);
  }
  if (command == "validate") {
    if (argc < rest + 1) return Usage();
    return RunValidate(*spec, argv[rest]);
  }
  if (command == "classify") return RunClassify(*spec);
  if (command == "simplify") {
    Result<ConstraintSet> pruned =
        RemoveRedundantConstraints(spec->dtd, spec->constraints);
    if (!pruned.ok()) {
      std::fprintf(stderr, "error: %s\n", pruned.status().ToString().c_str());
      return 2;
    }
    int removed = spec->constraints.size() - pruned->size();
    std::printf("# %d redundant constraint(s) removed\n%s", removed,
                pruned->ToString(spec->dtd).c_str());
    return 0;
  }
  if (command == "diagnose") {
    Result<ConstraintSet> core =
        MinimizeInconsistentCore(spec->dtd, spec->constraints);
    if (!core.ok()) {
      std::fprintf(stderr, "error: %s\n", core.status().ToString().c_str());
      return 2;
    }
    std::printf("minimal inconsistent core (%d constraints):\n%s",
                core->size(), core->ToString(spec->dtd).c_str());
    return 0;
  }
  return Usage();
}

}  // namespace

using namespace xmlverify;

int main(int argc, char** argv) {
  // Fault injection can be armed from the environment
  // (XMLVERIFY_FAULT_INJECT / XMLVERIFY_FAULT_SEED) so tests can
  // exercise failure paths without touching the command line; the
  // --fault-inject flag below overrides it.
  Status env_armed = FaultInjector::ArmFromEnv();
  if (!env_armed.ok()) {
    std::fprintf(stderr, "error: XMLVERIFY_FAULT_INJECT: %s\n",
                 env_armed.ToString().c_str());
    return 2;
  }

  // Global flags are accepted anywhere: strip them wherever they
  // appear, leaving the positional command line.
  bool stats = false;
  bool batch = false;
  int jobs = 0;
  BudgetFlags budget;
  std::string fault_spec;
  uint64_t fault_seed = 0;
  bool fault_armed = false;
  std::string trace_mode;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats") {
      stats = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (StartsWith(arg, "--jobs=")) {
      jobs = std::atoi(arg.c_str() + 7);
      if (jobs <= 0) {
        std::fprintf(stderr, "error: --jobs expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--solver-jobs=")) {
      budget.solver_jobs = std::atoi(arg.c_str() + 14);
      if (budget.solver_jobs <= 0) {
        std::fprintf(stderr,
                     "error: --solver-jobs expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--timeout=")) {
      budget.timeout_millis = std::atoll(arg.c_str() + 10);
      if (budget.timeout_millis <= 0) {
        std::fprintf(stderr,
                     "error: --timeout expects a positive millisecond count\n");
        return 2;
      }
    } else if (StartsWith(arg, "--memory-limit=")) {
      int64_t megabytes = std::atoll(arg.c_str() + 15);
      if (megabytes <= 0) {
        std::fprintf(stderr,
                     "error: --memory-limit expects a positive megabyte "
                     "count\n");
        return 2;
      }
      budget.memory_limit_bytes = megabytes * int64_t{1024} * 1024;
    } else if (StartsWith(arg, "--max-depth=")) {
      budget.max_depth = std::atoi(arg.c_str() + 12);
      if (budget.max_depth <= 0) {
        std::fprintf(stderr, "error: --max-depth expects a positive integer\n");
        return 2;
      }
      SetMaxParseDepth(budget.max_depth);
    } else if (arg == "--explain-core") {
      budget.explain_core = true;
    } else if (StartsWith(arg, "--retries=")) {
      budget.retries = std::atoi(arg.c_str() + 10);
      if (budget.retries < 0) {
        std::fprintf(stderr,
                     "error: --retries expects a non-negative integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--fault-inject=")) {
      fault_spec = arg.substr(15);
      fault_armed = true;
    } else if (StartsWith(arg, "--fault-seed=")) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--trace" || arg == "--trace=text") {
      trace_mode = "text";
    } else if (arg == "--trace=json") {
      trace_mode = "json";
    } else if (StartsWith(arg, "--trace=")) {
      std::fprintf(stderr, "error: unknown trace format '%s' "
                   "(expected --trace=text or --trace=json)\n", arg.c_str());
      return 2;
    } else {
      args.push_back(argv[i]);
    }
  }

  if (fault_armed) {
    Status armed = FaultInjector::Arm(fault_spec, fault_seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --fault-inject: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }

  StatsRegistry registry;
  std::unique_ptr<TraceSink> sink;
  if (trace_mode == "text") sink = std::make_unique<TextTraceSink>(std::cerr);
  if (trace_mode == "json") sink = std::make_unique<JsonTraceSink>(std::cerr);
  // Install the trace session only when a report was requested; with
  // no session the instrumented library runs at full speed.
  std::unique_ptr<TraceSession> session;
  if (stats || sink != nullptr) {
    session = std::make_unique<TraceSession>(&registry, sink.get());
  }

  int code;
  if (batch) {
    // `xmlvc --batch <manifest>`: the one positional argument left
    // after flag stripping is the manifest. Workers install their own
    // sessions, so the registry is passed directly rather than relying
    // on this (main) thread's session.
    if (args.size() != 2) {
      code = Usage();
    } else {
      code = RunBatchCommand(args[1], jobs, budget,
                             (stats || sink != nullptr) ? &registry : nullptr);
    }
  } else {
    code = RunCommand(static_cast<int>(args.size()), args.data(), budget);
  }
  if (stats) std::fputs(registry.ToJson().c_str(), stdout);
  return code;
}
