// xmlvc-serve: the persistent verification service.
//
//   xmlvc-serve [--port=N] [--jobs=N] [--queue-limit=N] [--timeout=MS]
//               [--memory-limit=MB] [--max-depth=N] [--cache-entries=N]
//               [--max-requests=N] [--stats]
//
// Binds 127.0.0.1:<port> (an ephemeral port when --port is omitted or
// 0), prints one line
//
//   LISTENING 127.0.0.1 <port>
//
// to stdout, and serves JSON-lines verification requests until
// SIGINT/SIGTERM (or until --max-requests responses have been
// written). Protocol, verdict-cache semantics, and the operator
// runbook: docs/serving.md.
//
// Flags:
//   --port=N          TCP port on 127.0.0.1 (default 0: ephemeral)
//   --jobs=N          worker threads (default: hardware threads)
//   --queue-limit=N   bounded admission queue; a request arriving with
//                     N already waiting is shed with a RETRYABLE
//                     response (default 256)
//   --timeout=MS      per-request wall-clock ceiling; a request's own
//                     timeout_ms may tighten but never exceed it
//   --memory-limit=MB per-request tracked-allocation ceiling
//   --max-depth=N     parser/recursion nesting ceiling
//   --cache-entries=N verdict-cache capacity per tier (default 65536)
//   --max-requests=N  exit after N responses (testing/benches)
//   --max-line-bytes=N     longest accepted request line (default 4MiB)
//   --idle-timeout-ms=MS   cancel + close a connection that sends no
//                          bytes for MS (slowloris defense; default off)
//   --write-timeout-ms=MS  cancel a connection whose peer stops
//                          draining a response for MS (default off)
//   --max-connections=N    shed accepts beyond N open connections with
//                          a RETRYABLE line (default off)
//   --cache-snapshot=PATH  load the verdict cache from PATH at start,
//                          write it back on drain (crash recovery;
//                          docs/serving.md)
//   --snapshot-interval-ms=MS  additionally snapshot every MS while
//                              serving (default: drain only)
//   --fault-inject=SPEC    arm deterministic fault injection (same
//                          grammar as XMLVERIFY_FAULT_INJECT;
//                          docs/robustness.md)
//   --fault-seed=N         seed for probabilistic fault rules
//   --stats           on exit, print the JSON counter report (the
//                     serve/* counters plus everything the checks
//                     recorded) to stdout
//
// The XMLVERIFY_FAULT_INJECT / XMLVERIFY_FAULT_SEED environment
// variables arm fault injection too (flags win when both are given).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "base/fault_injection.h"
#include "base/resource_guard.h"
#include "base/string_util.h"
#include "serve/server.h"
#include "trace/trace.h"

namespace {

using namespace xmlverify;

int Usage() {
  std::fprintf(stderr,
               "usage: xmlvc-serve [--port=N] [--jobs=N] [--queue-limit=N]\n"
               "                   [--timeout=MS] [--memory-limit=MB]\n"
               "                   [--max-depth=N] [--cache-entries=N]\n"
               "                   [--max-requests=N] [--no-incremental]\n"
               "                   [--idle-timeout-ms=MS]\n"
               "                   [--write-timeout-ms=MS]\n"
               "                   [--max-connections=N]\n"
               "                   [--cache-snapshot=PATH]\n"
               "                   [--snapshot-interval-ms=MS]\n"
               "                   [--fault-inject=SPEC] [--fault-seed=N]\n"
               "                   [--stats]\n"
               "serves JSON-lines verification requests on 127.0.0.1\n"
               "(wire protocol and runbook: docs/serving.md)\n");
  return 2;
}

// Signal handlers may only set a flag; a watcher thread bridges the
// flag to a clean ServeServer::Shutdown.
volatile std::sig_atomic_t g_signalled = 0;

void SetSignalled(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  ServeOptions options;
  bool stats = false;
  std::string fault_spec;
  uint64_t fault_seed = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--port=")) {
      options.port = std::atoi(arg.c_str() + 7);
      if (options.port < 0 || options.port > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 2;
      }
    } else if (StartsWith(arg, "--jobs=")) {
      options.jobs = std::atoi(arg.c_str() + 7);
      if (options.jobs <= 0) {
        std::fprintf(stderr, "error: --jobs expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--queue-limit=")) {
      long limit = std::atol(arg.c_str() + 14);
      if (limit <= 0) {
        std::fprintf(stderr,
                     "error: --queue-limit expects a positive integer\n");
        return 2;
      }
      options.queue_limit = static_cast<size_t>(limit);
    } else if (StartsWith(arg, "--timeout=")) {
      options.timeout_millis = std::atoll(arg.c_str() + 10);
      if (options.timeout_millis <= 0) {
        std::fprintf(stderr,
                     "error: --timeout expects a positive millisecond count\n");
        return 2;
      }
    } else if (StartsWith(arg, "--memory-limit=")) {
      int64_t megabytes = std::atoll(arg.c_str() + 15);
      if (megabytes <= 0) {
        std::fprintf(stderr,
                     "error: --memory-limit expects a positive megabyte "
                     "count\n");
        return 2;
      }
      options.memory_limit_bytes = megabytes * int64_t{1024} * 1024;
    } else if (StartsWith(arg, "--max-depth=")) {
      options.max_depth = std::atoi(arg.c_str() + 12);
      if (options.max_depth <= 0) {
        std::fprintf(stderr, "error: --max-depth expects a positive integer\n");
        return 2;
      }
      SetMaxParseDepth(options.max_depth);
    } else if (StartsWith(arg, "--cache-entries=")) {
      long entries = std::atol(arg.c_str() + 16);
      if (entries <= 0) {
        std::fprintf(stderr,
                     "error: --cache-entries expects a positive integer\n");
        return 2;
      }
      options.cache_entries = static_cast<size_t>(entries);
    } else if (StartsWith(arg, "--max-requests=")) {
      options.max_requests = std::atoll(arg.c_str() + 15);
      if (options.max_requests <= 0) {
        std::fprintf(stderr,
                     "error: --max-requests expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--max-line-bytes=")) {
      long bytes = std::atol(arg.c_str() + 17);
      if (bytes <= 0) {
        std::fprintf(stderr,
                     "error: --max-line-bytes expects a positive integer\n");
        return 2;
      }
      options.max_line_bytes = static_cast<size_t>(bytes);
    } else if (StartsWith(arg, "--idle-timeout-ms=")) {
      options.idle_timeout_millis = std::atoll(arg.c_str() + 18);
      if (options.idle_timeout_millis <= 0) {
        std::fprintf(stderr,
                     "error: --idle-timeout-ms expects a positive "
                     "millisecond count\n");
        return 2;
      }
    } else if (StartsWith(arg, "--write-timeout-ms=")) {
      options.write_timeout_millis = std::atoll(arg.c_str() + 19);
      if (options.write_timeout_millis <= 0) {
        std::fprintf(stderr,
                     "error: --write-timeout-ms expects a positive "
                     "millisecond count\n");
        return 2;
      }
    } else if (StartsWith(arg, "--max-connections=")) {
      options.max_connections = std::atoi(arg.c_str() + 18);
      if (options.max_connections <= 0) {
        std::fprintf(stderr,
                     "error: --max-connections expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--cache-snapshot=")) {
      options.cache_snapshot_path = arg.substr(17);
      if (options.cache_snapshot_path.empty()) {
        std::fprintf(stderr, "error: --cache-snapshot expects a path\n");
        return 2;
      }
    } else if (StartsWith(arg, "--snapshot-interval-ms=")) {
      options.snapshot_interval_millis = std::atoll(arg.c_str() + 23);
      if (options.snapshot_interval_millis <= 0) {
        std::fprintf(stderr,
                     "error: --snapshot-interval-ms expects a positive "
                     "millisecond count\n");
        return 2;
      }
    } else if (StartsWith(arg, "--fault-inject=")) {
      fault_spec = arg.substr(15);
    } else if (StartsWith(arg, "--fault-seed=")) {
      fault_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--no-incremental") {
      // Disable cache-assisted incremental re-verification (the
      // quick-implication confirmation path; docs/implication.md) —
      // every verdict-cache miss then pays for a cold solve.
      options.incremental = false;
    } else if (arg == "--stats") {
      stats = true;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  // Flags win over the environment; either way the armed spec is
  // validated up front so a typo fails loudly at startup, not
  // silently mid-soak.
  if (!fault_spec.empty()) {
    Status armed = FaultInjector::Arm(fault_spec, fault_seed);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --fault-inject: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  } else {
    Status armed = FaultInjector::ArmFromEnv();
    if (!armed.ok()) {
      std::fprintf(stderr, "error: XMLVERIFY_FAULT_INJECT: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }

  StatsRegistry registry;
  options.stats = &registry;

  ServeServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 2;
  }
  std::printf("LISTENING 127.0.0.1 %d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, SetSignalled);
  std::signal(SIGTERM, SetSignalled);

  // The watcher polls the signal flag and triggers a clean shutdown;
  // it exits as soon as the server stops for any reason (signal or
  // --max-requests), so the join below never waits long.
  std::thread signal_watcher([&server] {
    while (g_signalled == 0 && !server.stopped()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (g_signalled != 0) server.Shutdown();
  });

  server.Wait();
  signal_watcher.join();

  if (stats) std::fputs(registry.ToJson().c_str(), stdout);
  return 0;
}
