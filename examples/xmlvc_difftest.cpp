// xmlvc-difftest: differential self-tester for the consistency
// checkers. Generates seeded random specifications per constraint
// class, runs every applicable decision procedure on each, and
// reports any disagreement together with a delta-debugged minimal
// reproducer (see docs/testing.md).
//
//   xmlvc-difftest [flags]
//
// Flags, accepted anywhere on the command line:
//   --seeds=N       number of seeds to sweep (default 100)
//   --seed=S        first seed (default 1); seed S of a wide run can
//                   be replayed alone with --seed=S --seeds=1
//   --classes=a,b   comma-separated class list: ack, acfk, pkfk,
//                   reg, hrc (default: all)
//   --jobs=N        worker threads (default: hardware threads)
//   --shrink / --no-shrink
//                   minimize disagreeing specs (default on)
//   --solver=MODE   fast (presolve + sparse two-tier simplex,
//                   default), legacy (reference dense pipeline), or
//                   both (run the two pipelines per cell and report
//                   any definitive verdict that differs)
//   --solver-jobs=N additionally run every cell with the parallel
//                   branch-and-bound solver at N workers and compare
//                   its definitive verdicts against the serial fast
//                   pipeline (stackable with --solver=both)
//   --timeout=MS    per-procedure wall-clock budget in milliseconds
//   --stats         print a JSON phase/counter report to stdout
//
// Exit codes: 0 all procedures agree on every spec, 1 at least one
// disagreement (a bug somewhere), 2 usage error.
//
// The summary on stdout is deterministic for a given flag set
// (excluding --jobs, which never changes the output bytes).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "difftest/difftest.h"
#include "trace/trace.h"

namespace {

using namespace xmlverify;

int Usage() {
  std::fprintf(stderr,
               "usage: xmlvc-difftest [flags]\n"
               "  --seeds=N      seeds to sweep (default 100)\n"
               "  --seed=S       first seed (default 1)\n"
               "  --classes=a,b  classes: ack, acfk, pkfk, reg, hrc\n"
               "  --jobs=N       worker threads\n"
               "  --shrink / --no-shrink\n"
               "                 minimize disagreeing specs (default on)\n"
               "  --solver=MODE  fast (default), legacy, or both\n"
               "  --solver-jobs=N\n"
               "                 cross-check the parallel solver at N\n"
               "                 workers against the serial pipeline\n"
               "  --impl         also cross-check the implication engine\n"
               "                 (quick tier vs full encoding vs brute\n"
               "                 force) on every generated spec\n"
               "  --timeout=MS   per-procedure budget (ms)\n"
               "  --stats        JSON phase/counter report on stdout\n");
  return 2;
}

bool ParseClasses(const std::string& list,
                  std::vector<DifftestClass>* classes) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      Result<DifftestClass> cls = ParseDifftestClass(name);
      if (!cls.ok()) {
        std::fprintf(stderr, "error: %s\n", cls.status().message().c_str());
        return false;
      }
      classes->push_back(*cls);
    }
    start = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  DifftestOptions options;
  options.num_seeds = 100;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--seeds=")) {
      options.num_seeds = std::atoi(arg.c_str() + 8);
      if (options.num_seeds <= 0) {
        std::fprintf(stderr, "error: --seeds expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--seed=")) {
      options.start_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (StartsWith(arg, "--classes=")) {
      if (!ParseClasses(arg.substr(10), &options.classes)) return 2;
    } else if (StartsWith(arg, "--jobs=")) {
      options.jobs = std::atoi(arg.c_str() + 7);
      if (options.jobs <= 0) {
        std::fprintf(stderr, "error: --jobs expects a positive integer\n");
        return 2;
      }
    } else if (arg == "--impl") {
      options.impl_mode = true;
    } else if (arg == "--shrink") {
      options.shrink = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (StartsWith(arg, "--solver=")) {
      std::string mode = arg.substr(9);
      if (mode == "fast") {
        options.solver_path = SolverPath::kFast;
      } else if (mode == "legacy") {
        options.solver_path = SolverPath::kLegacy;
      } else if (mode == "both") {
        options.solver_path = SolverPath::kBoth;
      } else {
        std::fprintf(stderr,
                     "error: --solver expects fast, legacy, or both\n");
        return 2;
      }
    } else if (StartsWith(arg, "--solver-jobs=")) {
      options.solver_jobs = std::atoi(arg.c_str() + 14);
      if (options.solver_jobs <= 0) {
        std::fprintf(stderr,
                     "error: --solver-jobs expects a positive integer\n");
        return 2;
      }
    } else if (StartsWith(arg, "--timeout=")) {
      options.oracle.timeout_millis = std::atoll(arg.c_str() + 10);
      if (options.oracle.timeout_millis <= 0) {
        std::fprintf(stderr,
                     "error: --timeout expects a positive millisecond "
                     "count\n");
        return 2;
      }
    } else if (arg == "--stats") {
      stats = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }

  StatsRegistry registry;
  if (stats) options.stats = &registry;

  DifftestReport report = RunDifftest(options);
  std::fputs(report.Summary().c_str(), stdout);
  if (stats) std::fputs(registry.ToJson().c_str(), stdout);
  return report.agreed() ? 0 : 1;
}
